//! The edge version of the RG20 weak-diameter carving.
//!
//! Same bit-by-bit cluster competition as [`super::Rg20`], but instead of
//! killing nodes the algorithm **cuts edges**: a blue node requests its
//! smallest adjacent red cluster *with all its (uncut) edges to it*; the
//! red cluster compares the requesting-edge count against
//! `eps' · max(|E(C)|, 1)` internal edges. Accepting absorbs the
//! requesters (their request edges become internal); declining cuts the
//! requesting edges — strictly fewer than `eps' · |E(C)|` of them, and a
//! cluster whose threshold is below one edge can never decline, so total
//! cuts stay below `eps' · m` per phase. With `eps' = eps / b` the
//! overall cut fraction is below `eps`, every node ends up clustered,
//! and the separation invariant (adjacent-through-uncut-edges clusters
//! agree on processed bits) goes through exactly as in the node version.

use sdnd_clustering::{EdgeCarving, SteinerForest, SteinerTree, WeakEdgeCarver, WeakEdgeCarving};
use sdnd_congest::RoundLedger;
use sdnd_graph::{Graph, NodeId, NodeSet};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// The edge-version RG20 carver.
#[derive(Debug, Clone, Default)]
pub struct Rg20Edge {
    _private: (),
}

impl Rg20Edge {
    /// Creates the carver.
    pub fn new() -> Self {
        Rg20Edge::default()
    }
}

struct EdgeRun<'g> {
    g: &'g Graph,
    input: NodeSet,
    label: Vec<u64>,
    /// Cut edges, normalized.
    cut: HashSet<(u32, u32)>,
    /// Per-label tree data: root, entries, internal-edge count, members.
    trees: HashMap<u64, EdgeTreeData>,
    max_depth: u32,
    id_bits: u32,
}

struct EdgeTreeData {
    root: NodeId,
    entries: HashMap<u32, (Option<NodeId>, u32)>,
    members: u64,
    internal_edges: u64,
    depth: u32,
}

impl<'g> EdgeRun<'g> {
    fn new(g: &'g Graph, alive: &NodeSet) -> Self {
        let mut label = vec![0u64; g.n()];
        let mut trees = HashMap::with_capacity(alive.len());
        for v in alive.iter() {
            let id = g.id_of(v);
            label[v.index()] = id;
            let mut entries = HashMap::new();
            entries.insert(u32::from(v), (None, 0));
            trees.insert(
                id,
                EdgeTreeData {
                    root: v,
                    entries,
                    members: 1,
                    internal_edges: 0,
                    depth: 0,
                },
            );
        }
        EdgeRun {
            g,
            input: alive.clone(),
            label,
            cut: HashSet::new(),
            trees,
            max_depth: 0,
            id_bits: g.id_bits(),
        }
    }

    fn is_cut(&self, u: NodeId, v: NodeId) -> bool {
        let key = (
            u32::from(u).min(u32::from(v)),
            u32::from(u).max(u32::from(v)),
        );
        self.cut.contains(&key)
    }

    fn is_red(&self, v: NodeId, bit: u32) -> bool {
        self.label[v.index()] >> bit & 1 == 1
    }

    /// Uncut alive neighbors of `v`.
    fn live_neighbors<'a>(&'a self, v: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        self.g
            .neighbors(v)
            .iter()
            .copied()
            .filter(move |&u| self.input.contains(u) && !self.is_cut(v, u))
    }

    fn phase(&mut self, bit: u32, eps_p: f64, ledger: &mut RoundLedger) {
        let mut candidates: Vec<NodeId> = self.input.iter().collect();
        let step_cap = 64 * (self.g.m() as u64 + 4) * (self.id_bits as u64 + 1);
        let mut steps = 0u64;

        loop {
            // Requests: blue v targets its min adjacent red label with all
            // its uncut edges to that cluster's members.
            let mut by_label: HashMap<u64, Vec<(NodeId, Vec<NodeId>)>> = HashMap::new();
            let mut any = false;
            for &v in &candidates {
                if self.is_red(v, bit) {
                    continue;
                }
                let mut best: Option<u64> = None;
                for w in self.live_neighbors(v) {
                    if self.is_red(w, bit) {
                        let lw = self.label[w.index()];
                        best = Some(best.map_or(lw, |b: u64| b.min(lw)));
                    }
                }
                let Some(target) = best else { continue };
                let gateways: Vec<NodeId> = self
                    .live_neighbors(v)
                    .filter(|&w| self.is_red(w, bit) && self.label[w.index()] == target)
                    .collect();
                debug_assert!(!gateways.is_empty());
                any = true;
                by_label.entry(target).or_default().push((v, gateways));
            }
            if !any {
                break;
            }
            steps += 1;
            assert!(steps <= step_cap, "edge-RG20 phase failed to terminate");

            // Cost: request round + tree aggregation + announce, as in the
            // node version.
            let mut request_edges_total = 0u64;
            let mut tree_msgs = 0u64;
            for (l, reqs) in &by_label {
                request_edges_total += reqs.iter().map(|(_, gw)| gw.len() as u64).sum::<u64>();
                tree_msgs += 2 * self.trees[l].entries.len() as u64;
            }
            ledger.charge_rounds(2 + 2 * self.max_depth.max(1) as u64);
            ledger.record_messages(request_edges_total + tree_msgs, 2 * self.id_bits);

            let mut exposed: Vec<NodeId> = Vec::new();
            let mut labels: Vec<u64> = by_label.keys().copied().collect();
            labels.sort_unstable();
            for l in labels {
                let reqs = &by_label[&l];
                let request_edges: u64 = reqs.iter().map(|(_, gw)| gw.len() as u64).sum();
                let internal = self.trees[&l].internal_edges;
                let threshold = eps_p * internal.max(1) as f64;
                // A cluster whose threshold is below one edge can never
                // decline (cutting nothing would leave the adjacency).
                let accept = threshold <= 1.0 || request_edges as f64 >= threshold;
                if accept {
                    for (v, gateways) in reqs {
                        self.join(*v, l, gateways);
                        exposed.push(*v);
                    }
                } else {
                    for (v, gateways) in reqs {
                        for &w in gateways {
                            let key = (
                                u32::from(*v).min(u32::from(w)),
                                u32::from(*v).max(u32::from(w)),
                            );
                            self.cut.insert(key);
                        }
                    }
                }
            }

            let mut next: Vec<NodeId> = Vec::new();
            for &v in &exposed {
                next.push(v);
                for w in self.g.neighbors(v) {
                    next.push(*w);
                }
            }
            next.sort_unstable();
            next.dedup();
            candidates = next;
        }
    }

    /// Moves `v` into cluster `l` through one of `gateways`.
    fn join(&mut self, v: NodeId, l: u64, gateways: &[NodeId]) {
        let old = self.label[v.index()];
        debug_assert_ne!(old, l);
        // Internal edges of the old cluster incident to v become external.
        let old_internal = self
            .live_neighbors(v)
            .filter(|&u| self.label[u.index()] == old)
            .count() as u64;
        if let Some(t) = self.trees.get_mut(&old) {
            t.members -= 1;
            t.internal_edges -= old_internal.min(t.internal_edges);
        }
        self.label[v.index()] = l;
        // v's uncut edges into l (including non-gateway ones) become internal.
        let new_internal = self
            .live_neighbors(v)
            .filter(|&u| self.label[u.index()] == l && u != v)
            .count() as u64;
        let w = *gateways.iter().min().expect("at least one gateway");
        let w_depth = self.trees[&l].entries[&u32::from(w)].1;
        let t = self.trees.get_mut(&l).expect("target exists");
        t.members += 1;
        t.internal_edges += new_internal;
        if let Entry::Vacant(entry) = t.entries.entry(u32::from(v)) {
            let d = w_depth + 1;
            entry.insert((Some(w), d));
            t.depth = t.depth.max(d);
            self.max_depth = self.max_depth.max(d);
        }
    }

    fn finish(self) -> WeakEdgeCarving {
        let mut clusters_by_label: HashMap<u64, Vec<NodeId>> = HashMap::new();
        for v in self.input.iter() {
            clusters_by_label
                .entry(self.label[v.index()])
                .or_default()
                .push(v);
        }
        let mut labels: Vec<u64> = clusters_by_label.keys().copied().collect();
        labels.sort_unstable();
        let mut clusters = Vec::with_capacity(labels.len());
        let mut trees = Vec::with_capacity(labels.len());
        for l in labels {
            clusters.push(clusters_by_label.remove(&l).expect("present"));
            let data = &self.trees[&l];
            let mut tree = SteinerTree::singleton(data.root);
            let mut pairs: Vec<(u32, NodeId)> = data
                .entries
                .iter()
                .filter_map(|(&vi, &(p, _))| p.map(|p| (vi, p)))
                .collect();
            pairs.sort_unstable();
            for (vi, p) in pairs {
                tree.attach(NodeId::new(vi as usize), p);
            }
            trees.push(tree);
        }
        let cut: Vec<(NodeId, NodeId)> = self
            .cut
            .iter()
            .map(|&(a, b)| (NodeId::new(a as usize), NodeId::new(b as usize)))
            .collect();
        let carving =
            EdgeCarving::new(self.input, clusters, cut).expect("label classes partition the input");
        WeakEdgeCarving::new(carving, SteinerForest::from_trees(trees))
            .expect("one tree per cluster")
    }
}

impl Rg20Edge {
    /// Runs the edge carving on `G[alive]`, cutting at most an `eps`
    /// fraction of its edges.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not in `(0, 1)`.
    pub fn carve(
        &self,
        g: &Graph,
        alive: &NodeSet,
        eps: f64,
        ledger: &mut RoundLedger,
    ) -> WeakEdgeCarving {
        assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0,1), got {eps}");
        if alive.is_empty() {
            let carving = EdgeCarving::new(alive.clone(), vec![], vec![]).expect("empty");
            return WeakEdgeCarving::new(carving, SteinerForest::new()).expect("empty");
        }
        let mut run = EdgeRun::new(g, alive);
        let b = run.id_bits;
        let eps_p = eps / b as f64;
        for bit in (0..b).rev() {
            run.phase(bit, eps_p, ledger);
        }
        run.finish()
    }
}

impl WeakEdgeCarver for Rg20Edge {
    fn carve_weak_edges(
        &self,
        g: &Graph,
        alive: &NodeSet,
        eps: f64,
        ledger: &mut RoundLedger,
    ) -> WeakEdgeCarving {
        self.carve(g, alive, eps, ledger)
    }

    fn name(&self) -> &'static str {
        "rg20-edge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnd_clustering::validate_edge_carving;
    use sdnd_graph::gen;

    fn check(g: &Graph, eps: f64) -> WeakEdgeCarving {
        let alive = NodeSet::full(g.n());
        let mut ledger = RoundLedger::new();
        let wc = Rg20Edge::new().carve(g, &alive, eps, &mut ledger);
        // Separation after cuts and the cut budget (clusters may be
        // internally disconnected — this is a *weak* carving).
        let report = validate_edge_carving(g, wc.carving());
        assert!(report.separation_ok, "violations: {:?}", report.violations);
        assert!(
            report.cut_fraction <= eps + 1e-9,
            "cut fraction {:.3} exceeds eps {eps}",
            report.cut_fraction
        );
        // Trees cover their members.
        for (i, tree) in wc.forest().trees().iter().enumerate() {
            let nodes: std::collections::HashSet<_> = tree.nodes().collect();
            for &m in &wc.carving().clusters()[i] {
                assert!(
                    nodes.contains(&m),
                    "cluster {i} member {m} missing from tree"
                );
            }
        }
        assert!(wc.forest().max_depth().is_some(), "malformed tree");
        assert!(ledger.rounds() > 0);
        wc
    }

    #[test]
    fn carves_grid_and_cycle() {
        check(&gen::grid(8, 8), 0.5);
        check(&gen::cycle(50), 0.5);
    }

    #[test]
    fn carves_random_and_expander() {
        check(&gen::gnp_connected(70, 0.06, 3), 0.5);
        check(&gen::random_regular_connected(60, 4, 9).unwrap(), 0.5);
    }

    #[test]
    fn small_eps_cuts_fewer_edges() {
        let g = gen::grid(9, 9);
        let alive = NodeSet::full(g.n());
        let mut l1 = RoundLedger::new();
        let mut l2 = RoundLedger::new();
        let loose = Rg20Edge::new().carve(&g, &alive, 0.5, &mut l1);
        let tight = Rg20Edge::new().carve(&g, &alive, 0.1, &mut l2);
        assert!(tight.carving().cut_fraction(&g) <= 0.1 + 1e-9);
        assert!(loose.carving().cut_fraction(&g) <= 0.5 + 1e-9);
    }

    #[test]
    fn every_node_clustered() {
        let g = gen::random_tree(60, 2);
        let wc = check(&g, 0.5);
        let covered: usize = wc.carving().clusters().iter().map(Vec::len).sum();
        assert_eq!(covered, 60, "edge version never removes nodes");
    }

    #[test]
    fn empty_input() {
        let g = gen::path(3);
        let mut ledger = RoundLedger::new();
        let wc = Rg20Edge::new().carve(&g, &NodeSet::empty(3), 0.5, &mut ledger);
        assert_eq!(wc.carving().num_clusters(), 0);
    }
}
