//! The Rozhoň–Ghaffari deterministic weak-diameter ball carving.
//!
//! # Algorithm
//!
//! Every alive node starts as a singleton cluster labelled by its own
//! `b`-bit identifier. The algorithm runs `b` phases, processing label
//! bits from most to least significant. In the phase for bit `k`,
//! clusters whose label has bit `k` clear are **blue**, the others
//! **red**. The phase repeats *steps* until no blue node neighbors a red
//! cluster:
//!
//! 1. Every blue node adjacent to at least one red member picks the
//!    smallest adjacent red label and sends a join request through the
//!    smallest-index neighbor carrying it.
//! 2. Each requested red cluster `C` counts its requests by a
//!    converge-cast over its Steiner tree. If the count is at least
//!    `eps' · |C|` it **accepts**: all requesters join, relabelling to
//!    `C`'s label and attaching to the tree at their request edge.
//!    Otherwise it **declines**: its requesters die.
//!
//! A node that leaves a cluster stays in the old tree as a *helper*
//! (non-terminal) — this is what makes the diameter weak. Declines kill
//! fewer than `eps' · |C|` nodes and are never repeated (a declined
//! cluster is never requested again), so with `eps' = eps / b` the total
//! death fraction is below `eps`.
//!
//! **Separation invariant** (why the output clusters are pairwise
//! non-adjacent): throughout the run, any two adjacent clusters agree on
//! all already-processed bits. New adjacencies only arise when a red
//! cluster absorbs a node `v`; `v`'s old cluster was adjacent to both
//! the absorber and every cluster `v` touches, so by induction they all
//! agree on the processed bits, and the phase-end guarantee (no blue–red
//! adjacency) extends the agreement to the current bit. After the last
//! phase, adjacent nodes agree on every bit — i.e. they share a label.

use sdnd_clustering::{
    BallCarving, Cancelled, CarveCtx, SteinerForest, SteinerTree, WeakCarver, WeakCarving,
};
use sdnd_congest::{bits_for_value, RoundLedger};
use sdnd_graph::{Graph, NodeId, NodeSet};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// One rebuilt Steiner tree: `(label, parent/depth entries, new depth)`.
type TreeRebuild = (u64, HashMap<u32, (Option<NodeId>, u32)>, u32);

/// Tuning knobs for [`Rg20`].
#[derive(Debug, Clone, Copy)]
pub struct Rg20Config {
    /// Rebuild Steiner trees after each phase with a truncated BFS (the
    /// GGR21-style depth improvement).
    pub rebuild_trees: bool,
    /// Only trees deeper than this are rebuilt (rebuilding is pointless
    /// for shallow trees and singletons).
    pub rebuild_depth_threshold: u32,
}

impl Default for Rg20Config {
    fn default() -> Self {
        Rg20Config {
            rebuild_trees: false,
            rebuild_depth_threshold: 4,
        }
    }
}

/// The RG20 deterministic weak-diameter ball carver (see module docs).
#[derive(Debug, Clone)]
pub struct Rg20 {
    config: Rg20Config,
    name: &'static str,
}

impl Rg20 {
    /// The plain RG20 algorithm.
    // The constructor shares the type's name on purpose: call sites read
    // as the algorithm row label (`Rg20::rg20()` vs `Rg20::ggr21()`).
    #[allow(clippy::self_named_constructors)]
    pub fn rg20() -> Self {
        Rg20 {
            config: Rg20Config::default(),
            name: "rg20",
        }
    }

    /// The GGR21-style variant with per-phase tree rebuilding.
    pub fn ggr21() -> Self {
        Rg20 {
            config: Rg20Config {
                rebuild_trees: true,
                ..Rg20Config::default()
            },
            name: "ggr21",
        }
    }

    /// A custom configuration (named `rg20-custom` in reports).
    pub fn with_config(config: Rg20Config) -> Self {
        Rg20 {
            config,
            name: "rg20-custom",
        }
    }
}

impl Default for Rg20 {
    fn default() -> Self {
        Self::rg20()
    }
}

/// Per-cluster bookkeeping during the run.
struct TreeData {
    root: NodeId,
    /// node index → (parent edge if non-root, depth in tree).
    entries: HashMap<u32, (Option<NodeId>, u32)>,
    /// Current number of members (terminals).
    members: u64,
    /// Deepest entry.
    depth: u32,
    /// Whether the tree or its member set changed since the last
    /// rebuild. A clean tree would rebuild to the identical result (the
    /// BFS is deterministic over fixed root, members, and input set), so
    /// rebuilding it — and charging rounds for it — is pure waste.
    dirty: bool,
}

impl TreeData {
    fn singleton(root: NodeId) -> Self {
        let mut entries = HashMap::new();
        entries.insert(u32::from(root), (None, 0));
        TreeData {
            root,
            entries,
            members: 1,
            depth: 0,
            dirty: true,
        }
    }
}

struct Run<'g> {
    g: &'g Graph,
    input: NodeSet,
    alive: NodeSet,
    /// Current label per node (valid only for input nodes).
    label: Vec<u64>,
    trees: HashMap<u64, TreeData>,
    /// Edge congestion tracker: normalized edge → #trees using it.
    edge_use: HashMap<(u32, u32), u32>,
    max_congestion: u32,
    max_depth: u32,
    id_bits: u32,
}

impl<'g> Run<'g> {
    fn new(g: &'g Graph, alive0: &NodeSet) -> Self {
        let mut label = vec![0u64; g.n()];
        let mut trees = HashMap::with_capacity(alive0.len());
        for v in alive0.iter() {
            let id = g.id_of(v);
            label[v.index()] = id;
            trees.insert(id, TreeData::singleton(v));
        }
        Run {
            g,
            input: alive0.clone(),
            alive: alive0.clone(),
            label,
            trees,
            edge_use: HashMap::new(),
            max_congestion: 0,
            max_depth: 0,
            id_bits: g.id_bits(),
        }
    }

    fn is_red(&self, v: NodeId, bit: u32) -> bool {
        self.label[v.index()] >> bit & 1 == 1
    }

    fn add_tree_edge(&mut self, v: NodeId, p: NodeId) {
        let (a, b) = (
            u32::from(v).min(u32::from(p)),
            u32::from(v).max(u32::from(p)),
        );
        let c = self.edge_use.entry((a, b)).or_insert(0);
        *c += 1;
        self.max_congestion = self.max_congestion.max(*c);
    }

    /// Collects the requests of one step: for every alive blue node in
    /// `candidates` adjacent to an alive red member, the chosen target
    /// `(label, gateway neighbor)`.
    fn collect_requests(
        &self,
        bit: u32,
        candidates: impl Iterator<Item = NodeId>,
    ) -> Vec<(NodeId, u64, NodeId)> {
        let mut requests = Vec::new();
        for v in candidates {
            if !self.alive.contains(v) || self.is_red(v, bit) {
                continue;
            }
            let mut best: Option<(u64, NodeId)> = None;
            for w in self.g.neighbors(v) {
                if !self.alive.contains(*w) || !self.is_red(*w, bit) {
                    continue;
                }
                let lw = self.label[w.index()];
                match best {
                    None => best = Some((lw, *w)),
                    Some((bl, bw)) => {
                        if (lw, *w) < (bl, bw) {
                            best = Some((lw, *w));
                        }
                    }
                }
            }
            if let Some((l, w)) = best {
                requests.push((v, l, w));
            }
        }
        requests
    }

    /// One phase for `bit`. Returns per-phase step count.
    ///
    /// An armed deadline on `ctx` is honored once per growth step (each
    /// step is one traversal epoch: a request sweep plus the accepted
    /// joins), so a single phase on a large graph cannot overshoot the
    /// budget by more than one epoch.
    fn phase(
        &mut self,
        bit: u32,
        eps_p: f64,
        ledger: &mut RoundLedger,
        ctx: &mut CarveCtx,
    ) -> Result<u64, Cancelled> {
        let mut steps = 0u64;
        // First step scans every alive node; later steps only nodes
        // exposed by the previous step's joins.
        let mut candidates: Vec<NodeId> = self.alive.iter().collect();
        let step_cap = 16 * (self.alive.len() as u64 + 4) * (self.id_bits as u64 + 1);

        loop {
            ctx.checkpoint("rg20-growth-step")?;
            let requests = self.collect_requests(bit, candidates.iter().copied());
            if requests.is_empty() {
                break;
            }
            steps += 1;
            assert!(steps <= step_cap, "RG20 phase failed to terminate");

            // Group requests by target label.
            let mut by_label: HashMap<u64, Vec<(NodeId, NodeId)>> = HashMap::new();
            for (v, l, w) in requests {
                by_label.entry(l).or_default().push((v, w));
            }

            // Cost of the step: one request round, one converge-cast and
            // one decision broadcast over the requested trees (depth x
            // congestion, the paper's costing), one label-announce round.
            let b = self.id_bits;
            let mut tree_msgs = 0u64;
            let mut request_count = 0u64;
            for (l, reqs) in &by_label {
                request_count += reqs.len() as u64;
                tree_msgs += 2 * self.trees[l].entries.len() as u64;
            }
            ledger.charge_rounds(2);
            ledger.charge_rounds(
                2 * self.max_depth.max(1) as u64 * self.max_congestion.max(1) as u64,
            );
            ledger.record_messages(request_count, 2 * b);
            ledger.record_messages(tree_msgs, 2 * b);

            // Decisions and applications.
            let mut exposed: Vec<NodeId> = Vec::new();
            let mut labels: Vec<u64> = by_label.keys().copied().collect();
            labels.sort_unstable();
            for l in labels {
                let reqs = &by_label[&l];
                let cluster_size = self.trees[&l].members;
                let accept = reqs.len() as f64 >= eps_p * cluster_size as f64;
                if accept {
                    for &(v, w) in reqs {
                        self.join(v, l, w);
                        exposed.push(v);
                    }
                    // Announce the new labels (one round, already charged;
                    // messages to each neighbor).
                    let announce: u64 = reqs.iter().map(|&(v, _)| self.g.degree(v) as u64).sum();
                    ledger.record_messages(announce, b);
                } else {
                    for &(v, _) in reqs {
                        self.kill(v);
                    }
                }
            }

            // Next step's candidates: neighbors of newly joined nodes.
            let mut next: Vec<NodeId> = Vec::new();
            for &v in &exposed {
                for w in self.g.neighbors(v) {
                    next.push(*w);
                }
            }
            next.sort_unstable();
            next.dedup();
            candidates = next;
        }
        Ok(steps)
    }

    /// Moves `v` into the cluster labelled `l` via gateway `w`.
    fn join(&mut self, v: NodeId, l: u64, w: NodeId) {
        let old = self.label[v.index()];
        debug_assert_ne!(old, l);
        if let Some(t) = self.trees.get_mut(&old) {
            t.members -= 1;
            t.dirty = true;
            // v stays in the old tree as a helper.
        }
        self.label[v.index()] = l;
        let w_depth = self.trees[&l].entries[&u32::from(w)].1;
        let t = self.trees.get_mut(&l).expect("target cluster exists");
        t.members += 1;
        t.dirty = true;
        if let Entry::Vacant(entry) = t.entries.entry(u32::from(v)) {
            let d = w_depth + 1;
            entry.insert((Some(w), d));
            if d > t.depth {
                t.depth = d;
            }
            let new_depth = t.depth;
            self.max_depth = self.max_depth.max(new_depth);
            self.add_tree_edge(v, w);
        }
        // If v was already a helper in l's tree, its old attachment is
        // reused — no new edge, no depth change.
    }

    /// Kills `v` (declined requester). It stays a helper in its tree.
    fn kill(&mut self, v: NodeId) {
        let old = self.label[v.index()];
        if let Some(t) = self.trees.get_mut(&old) {
            t.members -= 1;
            t.dirty = true;
        }
        self.alive.remove(v);
    }

    /// GGR21-style rebuild: replace deep trees with truncated BFS trees
    /// from their roots over the *input* set (dead nodes may serve as
    /// helpers, exactly as the incremental trees allow).
    fn rebuild_trees(
        &mut self,
        threshold: u32,
        ledger: &mut RoundLedger,
        ctx: &mut CarveCtx,
    ) -> Result<(), Cancelled> {
        let labels: Vec<u64> = self
            .trees
            .iter()
            .filter(|(_, t)| t.dirty && t.members >= 2 && t.depth > threshold)
            .map(|(&l, _)| l)
            .collect();
        if labels.is_empty() {
            return Ok(());
        }
        // One pass over the alive set groups the members of every
        // rebuilt label (instead of one O(n) scan per label).
        let mut members_of: HashMap<u64, Vec<NodeId>> = HashMap::with_capacity(labels.len());
        for &l in &labels {
            members_of.insert(l, Vec::new());
        }
        for v in self.alive.iter() {
            if let Some(ms) = members_of.get_mut(&self.label[v.index()]) {
                ms.push(v);
            }
        }
        // Pass 1: compute the replacement trees (immutable borrows only).
        let mut replacements: Vec<TreeRebuild> = Vec::new();
        {
            let view = self.g.view(&self.input);
            for &l in &labels {
                ctx.checkpoint("rg20-tree-rebuild")?;
                let root = self.trees[&l].root;
                let members = &members_of[&l];
                let mut scratch = RoundLedger::new();
                // Every member is a terminal of the old tree, whose
                // root-to-member paths are real edges in the input view,
                // so all members lie within the old depth of the root —
                // the BFS can truncate there instead of flooding the
                // whole component (distances and min-index parents within
                // the bound are unaffected by truncation).
                let bfs = sdnd_congest::primitives::bfs_in(
                    &view,
                    [root],
                    self.trees[&l].depth,
                    &mut scratch,
                    &mut ctx.ws,
                );
                // Prune to the union of root-to-member paths.
                let mut entries: HashMap<u32, (Option<NodeId>, u32)> = HashMap::new();
                entries.insert(u32::from(root), (None, 0));
                let mut depth = 0u32;
                for &m in members {
                    debug_assert!(bfs.reached(m), "member must be reachable from root");
                    depth = depth.max(bfs.dist(m));
                    let mut cur = m;
                    while !entries.contains_key(&u32::from(cur)) {
                        let p = bfs.parent(cur).expect("non-root reached node has parent");
                        entries.insert(u32::from(cur), (Some(p), bfs.dist(cur)));
                        cur = p;
                    }
                }
                replacements.push((l, entries, depth));
            }
        }

        // Pass 2: swap trees and edge-use counts.
        let mut max_new_depth = 0u64;
        let mut rebuild_msgs = 0u64;
        for (l, entries, depth) in replacements {
            let old = self.trees.get_mut(&l).expect("tree exists");
            let old_entries = std::mem::take(&mut old.entries);
            old.depth = depth;
            old.dirty = false;
            for (&vi, &(p, _)) in &old_entries {
                if let Some(p) = p {
                    let key = (vi.min(u32::from(p)), vi.max(u32::from(p)));
                    if let Some(c) = self.edge_use.get_mut(&key) {
                        *c -= 1;
                    }
                }
            }
            rebuild_msgs += entries.len() as u64;
            max_new_depth = max_new_depth.max(depth as u64);
            for (&vi, &(p, _)) in &entries {
                if let Some(p) = p {
                    self.add_tree_edge(NodeId::new(vi as usize), p);
                }
            }
            self.trees.get_mut(&l).expect("tree exists").entries = entries;
        }
        // Parallel truncated BFS over all rebuilt clusters, congested.
        ledger.charge_rounds(2 * max_new_depth * self.max_congestion.max(1) as u64);
        ledger.record_messages(rebuild_msgs, 2 * self.id_bits);
        // Depth high-water mark resets to the current maximum.
        self.max_depth = self
            .trees
            .values()
            .filter(|t| t.members > 0)
            .map(|t| t.depth)
            .max()
            .unwrap_or(0);
        Ok(())
    }

    /// Final clusters and forest.
    fn finish(self) -> WeakCarving {
        let mut clusters_by_label: HashMap<u64, Vec<NodeId>> = HashMap::new();
        for v in self.alive.iter() {
            clusters_by_label
                .entry(self.label[v.index()])
                .or_default()
                .push(v);
        }
        let mut labels: Vec<u64> = clusters_by_label.keys().copied().collect();
        labels.sort_unstable();

        let mut clusters = Vec::with_capacity(labels.len());
        let mut trees = Vec::with_capacity(labels.len());
        for l in labels {
            let members = clusters_by_label.remove(&l).expect("label present");
            let data = &self.trees[&l];
            let mut tree = SteinerTree::singleton(data.root);
            let mut pairs: Vec<(u32, NodeId)> = data
                .entries
                .iter()
                .filter_map(|(&vi, &(p, _))| p.map(|p| (vi, p)))
                .collect();
            pairs.sort_unstable();
            for (vi, p) in pairs {
                tree.attach(NodeId::new(vi as usize), p);
            }
            clusters.push(members);
            trees.push(tree);
        }
        let carving =
            BallCarving::new(self.input, clusters).expect("label classes partition the alive set");
        WeakCarving::new(carving, SteinerForest::from_trees(trees))
            .expect("one tree per cluster by construction")
    }
}

impl Rg20 {
    /// Runs the carving on `G[alive]`, removing at most an `eps`
    /// fraction of `alive` and returning non-adjacent clusters with
    /// Steiner trees.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not in `(0, 1)`.
    pub fn carve(
        &self,
        g: &Graph,
        alive: &NodeSet,
        eps: f64,
        ledger: &mut RoundLedger,
    ) -> WeakCarving {
        self.carve_in(g, alive, eps, ledger, &mut CarveCtx::new())
            .expect("unarmed ctx never cancels")
    }

    /// [`carve`](Self::carve) with a caller-held [`CarveCtx`]: the
    /// per-phase tree rebuilds (the GGR21 variant) run their BFS through
    /// the context's traversal workspace, and the context's armed
    /// deadline is honored at every traversal epoch — once per bit
    /// phase, once per growth step inside a phase, and once per rebuilt
    /// tree — so the abort latency is bounded by a single epoch, not a
    /// whole blue/red sweep. Output bit-identical to
    /// [`carve`](Self::carve) when it completes.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the armed deadline trips at an epoch boundary;
    /// the context stays safely reusable.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not in `(0, 1)`.
    pub fn carve_in(
        &self,
        g: &Graph,
        alive: &NodeSet,
        eps: f64,
        ledger: &mut RoundLedger,
        ctx: &mut CarveCtx,
    ) -> Result<WeakCarving, Cancelled> {
        assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0,1), got {eps}");
        if alive.is_empty() {
            let carving = BallCarving::new(alive.clone(), vec![]).expect("empty carving");
            return Ok(WeakCarving::new(carving, SteinerForest::new()).expect("empty forest"));
        }
        let mut run = Run::new(g, alive);
        let b = run.id_bits;
        let eps_p = eps / b as f64;
        for bit in (0..b).rev() {
            ctx.checkpoint("rg20-bit-phase")?;
            run.phase(bit, eps_p, ledger, ctx)?;
            if self.config.rebuild_trees {
                run.rebuild_trees(self.config.rebuild_depth_threshold, ledger, ctx)?;
            }
        }
        let out = run.finish();
        debug_assert!(out.carving().dead_fraction() <= eps + 1e-9);
        Ok(out)
    }

    /// Measured high-water marks `(max tree depth, congestion)` are
    /// available post-hoc from the returned forest; this helper exposes
    /// the theoretical bit budget used for message sizing.
    pub fn message_bits_for(g: &Graph) -> u32 {
        2 * bits_for_value(g.n().max(2) as u64 - 1)
    }
}

impl WeakCarver for Rg20 {
    fn carve_weak(
        &self,
        g: &Graph,
        alive: &NodeSet,
        eps: f64,
        ledger: &mut RoundLedger,
    ) -> WeakCarving {
        self.carve(g, alive, eps, ledger)
    }

    fn carve_weak_in(
        &self,
        g: &Graph,
        alive: &NodeSet,
        eps: f64,
        ledger: &mut RoundLedger,
        ctx: &mut CarveCtx,
    ) -> Result<WeakCarving, Cancelled> {
        self.carve_in(g, alive, eps, ledger, ctx)
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnd_clustering::validate_weak_carving;
    use sdnd_graph::gen;

    fn check(g: &Graph, eps: f64, carver: &Rg20) -> (WeakCarving, RoundLedger) {
        let alive = NodeSet::full(g.n());
        let mut ledger = RoundLedger::new();
        let wc = carver.carve(g, &alive, eps, &mut ledger);
        let report = validate_weak_carving(g, &wc);
        assert!(
            report.carving.is_valid_weak(eps),
            "weak contract violated (dead {:.3}): {:?}",
            report.carving.dead_fraction,
            report.violations
        );
        assert!(report.trees_well_formed, "trees: {:?}", report.violations);
        assert!(
            report.terminals_covered,
            "terminals: {:?}",
            report.violations
        );
        (wc, ledger)
    }

    #[test]
    fn carves_path() {
        let g = gen::path(32);
        let (wc, ledger) = check(&g, 0.5, &Rg20::rg20());
        assert!(wc.carving().num_clusters() >= 1);
        assert!(ledger.rounds() > 0);
    }

    #[test]
    fn carves_grid_with_small_eps() {
        let g = gen::grid(8, 8);
        let (wc, _) = check(&g, 0.25, &Rg20::rg20());
        assert!(wc.carving().dead_fraction() <= 0.25);
    }

    #[test]
    fn carves_random_graph() {
        let g = gen::gnp_connected(80, 0.05, 7);
        check(&g, 0.5, &Rg20::rg20());
    }

    #[test]
    fn carves_expander() {
        let g = gen::random_regular_connected(60, 4, 3).unwrap();
        check(&g, 0.5, &Rg20::rg20());
    }

    #[test]
    fn ggr21_variant_also_valid() {
        let g = gen::grid(9, 9);
        let (wc_plain, _) = check(&g, 0.5, &Rg20::rg20());
        let (wc_rebuilt, _) = check(&g, 0.5, &Rg20::ggr21());
        // The rebuild variant never has deeper trees.
        let d_plain = wc_plain.forest().max_depth().unwrap();
        let d_rebuilt = wc_rebuilt.forest().max_depth().unwrap();
        assert!(
            d_rebuilt <= d_plain.max(4),
            "rebuilt {d_rebuilt} vs plain {d_plain}"
        );
    }

    #[test]
    fn adversarial_ids_still_valid() {
        let n = 49;
        let g = gen::grid(7, 7);
        // Reverse identifiers: high ids in the corner.
        let ids: Vec<u64> = (0..n as u64).rev().collect();
        let g = g.with_ids(ids).unwrap();
        check(&g, 0.5, &Rg20::rg20());
    }

    #[test]
    fn respects_alive_subset() {
        let g = gen::grid(6, 6);
        let alive = NodeSet::from_nodes(36, (0..36).filter(|&i| i % 7 != 3).map(NodeId::new));
        let mut ledger = RoundLedger::new();
        let wc = Rg20::rg20().carve(&g, &alive, 0.5, &mut ledger);
        let report = validate_weak_carving(&g, &wc);
        assert!(report.carving.is_valid_weak(0.5), "{:?}", report.violations);
        // No cluster contains a node outside the alive set (checked by
        // construction, but assert the input set matched).
        assert_eq!(wc.carving().input(), &alive);
    }

    #[test]
    fn singleton_and_empty_inputs() {
        let g = gen::path(3);
        let mut ledger = RoundLedger::new();
        let empty = Rg20::rg20().carve(&g, &NodeSet::empty(3), 0.5, &mut ledger);
        assert_eq!(empty.carving().num_clusters(), 0);

        let one = NodeSet::from_nodes(3, [NodeId::new(1)]);
        let wc = Rg20::rg20().carve(&g, &one, 0.5, &mut ledger);
        assert_eq!(wc.carving().num_clusters(), 1);
        assert_eq!(wc.carving().dead_fraction(), 0.0);
    }

    #[test]
    fn congest_compliance() {
        let g = gen::grid(6, 6);
        let alive = NodeSet::full(36);
        let mut ledger = RoundLedger::new();
        let _ = Rg20::rg20().carve(&g, &alive, 0.5, &mut ledger);
        let cost = sdnd_congest::CostModel::congest_for(36);
        assert!(
            ledger.complies_with(&cost),
            "max message {} bits exceeds budget {}",
            ledger.max_message_bits(),
            cost.bits_per_message()
        );
    }

    #[test]
    #[should_panic(expected = "eps must lie in (0,1)")]
    fn rejects_bad_eps() {
        let g = gen::path(4);
        let mut ledger = RoundLedger::new();
        let _ = Rg20::rg20().carve(&g, &NodeSet::full(4), 1.5, &mut ledger);
    }
}
