//! Deterministic weak-diameter ball carving — the black box `A` that the
//! paper's Theorem 2.1 transformation consumes.
//!
//! The main algorithm is the bit-by-bit cluster competition of Rozhoň
//! and Ghaffari \[RG20\] (STOC 2020): nodes start as singleton clusters
//! labelled by their `b`-bit identifiers; for each bit, clusters whose
//! label has the bit set ("red") absorb adjacent nodes of "blue" clusters
//! or, when too few nodes request to join, kill the requesters. The
//! surviving label classes are pairwise non-adjacent, each with a
//! Steiner tree of depth `R = O(log^3 n / eps)` and edge congestion
//! `L = O(log n)`, and at most an `eps` fraction of nodes die.
//!
//! Two configurations are exported:
//!
//! - [`Rg20::rg20`] — the plain algorithm, matching the `[RG20]` rows of
//!   the paper's tables.
//! - [`Rg20::ggr21`] — a variant that rebuilds long Steiner trees after
//!   each phase by a truncated BFS, standing in for the
//!   Ghaffari–Grunau–Rozhoň \[GGR21\] depth improvement
//!   (`R = O(log^2 n / eps)`). The true GGR21 potential argument is out
//!   of scope; the stand-in satisfies the same black-box interface with
//!   shorter measured trees (see DESIGN.md).
//!
//! The crate also provides [`Ls93`], the classic randomized
//! weak-diameter carving of Linial and Saks, used as the randomized
//! baseline row.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ls93;
mod rg20;
mod rg20_edge;

pub use ls93::Ls93;
pub use rg20::{Rg20, Rg20Config};
pub use rg20_edge::Rg20Edge;
