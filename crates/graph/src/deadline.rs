//! Cooperative deadlines and cancellation.
//!
//! [`Deadline`] is the one cancellation source shared by every layer of
//! the stack: the carving pipeline checks it at phase boundaries (per
//! carve attempt, per halving iteration, per validated cluster — never
//! per edge), the CONGEST engine's watchdog folds it into its per-round
//! check, and the serve daemon arms one per request. A tripped check
//! returns the typed [`Cancelled`] diagnostic naming the phase that
//! observed the trip and the elapsed wall clock, so callers can report
//! *where* a request died instead of just that it did.
//!
//! The design is cooperative, not preemptive: work between two
//! checkpoints always runs to the next checkpoint. That is exactly the
//! granularity the epoch-stamped traversal workspaces make safe — any
//! state abandoned mid-phase is invalidated wholesale when the next
//! traversal epoch opens.
//!
//! Clones share state. `Deadline::within(d)` starts the clock at
//! construction; every clone observes the same expiry instant and the
//! same [`cancel`](Deadline::cancel) flag, so a supervisor thread can
//! hold one clone and abort a worker holding the other.
//!
//! ```
//! use sdnd_graph::Deadline;
//!
//! let unarmed = Deadline::unarmed();
//! assert!(unarmed.check("anything").is_ok()); // never trips
//!
//! let d = Deadline::within(std::time::Duration::ZERO);
//! let err = d.check("doc-phase").unwrap_err();
//! assert_eq!(err.phase, "doc-phase");
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared innards of an armed [`Deadline`]; unarmed deadlines carry
/// nothing at all, so the unarmed check is a single branch.
#[derive(Debug)]
struct DeadlineInner {
    /// When the clock started (for [`Cancelled::elapsed`]).
    started: Instant,
    /// Absolute expiry instant, if a wall-clock budget was set.
    at: Option<Instant>,
    /// The budget that produced `at`, kept for diagnostics.
    budget: Option<Duration>,
    /// Explicit cancellation flag; any clone may raise it.
    cancel: AtomicBool,
}

/// A cooperative deadline: a wall-clock budget, an explicit cancel
/// flag, or both — checked at phase boundaries via [`check`].
///
/// The default value is [`unarmed`](Deadline::unarmed): checks never
/// trip and cost one branch, so infallible wrappers can thread a
/// default `Deadline` through the `_in` pipeline with no measurable
/// overhead on the zero-deadline path.
///
/// [`check`]: Deadline::check
#[derive(Clone, Debug, Default)]
pub struct Deadline {
    inner: Option<Arc<DeadlineInner>>,
}

impl Deadline {
    /// A deadline that never trips. This is also the `Default` value.
    #[must_use]
    pub fn unarmed() -> Deadline {
        Deadline { inner: None }
    }

    /// Arms a wall-clock budget starting *now*: checks trip once
    /// `budget` has elapsed. The returned deadline is also
    /// cancellable — clones share one cancel flag.
    #[must_use]
    pub fn within(budget: Duration) -> Deadline {
        let started = Instant::now();
        Deadline {
            inner: Some(Arc::new(DeadlineInner {
                started,
                at: started.checked_add(budget),
                budget: Some(budget),
                cancel: AtomicBool::new(false),
            })),
        }
    }

    /// Arms a pure cancellation token: no wall clock, trips only after
    /// some clone calls [`cancel`](Deadline::cancel).
    #[must_use]
    pub fn cancellable() -> Deadline {
        Deadline {
            inner: Some(Arc::new(DeadlineInner {
                started: Instant::now(),
                at: None,
                budget: None,
                cancel: AtomicBool::new(false),
            })),
        }
    }

    /// Whether this deadline can ever trip.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Raises the shared cancel flag; every clone's next
    /// [`check`](Deadline::check) trips. A no-op on unarmed deadlines.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancel.store(true, Ordering::Release);
        }
    }

    /// Whether some clone has called [`cancel`](Deadline::cancel).
    #[must_use]
    pub fn cancel_requested(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.cancel.load(Ordering::Acquire))
    }

    /// The absolute expiry instant, when a wall-clock budget was armed.
    #[must_use]
    pub fn instant(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.at)
    }

    /// The wall-clock budget this deadline was armed with.
    #[must_use]
    pub fn budget(&self) -> Option<Duration> {
        self.inner.as_ref().and_then(|i| i.budget)
    }

    /// Time since the deadline was armed (zero when unarmed).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.inner
            .as_ref()
            .map_or(Duration::ZERO, |i| i.started.elapsed())
    }

    /// Remaining budget: `None` when unarmed (unbounded), zero when
    /// expired or cancelled.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        if inner.cancel.load(Ordering::Acquire) {
            return Some(Duration::ZERO);
        }
        inner
            .at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// The phase-boundary checkpoint: `Ok(())` while the budget holds
    /// and nobody cancelled, [`Cancelled`] naming `phase` otherwise.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] once the wall-clock budget is exhausted or a clone
    /// raised the cancel flag. Unarmed deadlines never err.
    pub fn check(&self, phase: &'static str) -> Result<(), Cancelled> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let expired =
            inner.cancel.load(Ordering::Acquire) || inner.at.is_some_and(|at| Instant::now() >= at);
        if expired {
            Err(Cancelled {
                phase,
                elapsed: inner.started.elapsed(),
            })
        } else {
            Ok(())
        }
    }
}

/// A request was cooperatively aborted: which phase observed the trip,
/// and how long the work had been running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cancelled {
    /// The phase boundary that observed the expired deadline (e.g.
    /// `"carve-attempt"`, `"validate-cluster"`).
    pub phase: &'static str,
    /// Wall clock from arming the deadline to the tripping check.
    pub elapsed: Duration,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cancelled at phase `{}` after {:.3} ms",
            self.phase,
            self.elapsed.as_secs_f64() * 1e3
        )
    }
}

impl std::error::Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_never_trips_and_reports_nothing() {
        let d = Deadline::unarmed();
        assert!(!d.is_armed());
        assert!(d.check("x").is_ok());
        assert!(d.instant().is_none());
        assert!(d.budget().is_none());
        assert!(d.remaining().is_none());
        assert_eq!(d.elapsed(), Duration::ZERO);
        d.cancel(); // no-op
        assert!(!d.cancel_requested());
        assert!(d.check("x").is_ok());
        assert!(Deadline::default().check("x").is_ok());
    }

    #[test]
    fn zero_budget_trips_immediately_with_phase_and_elapsed() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.is_armed());
        let err = d.check("trip-here").unwrap_err();
        assert_eq!(err.phase, "trip-here");
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert!(err.to_string().contains("trip-here"), "{err}");
    }

    #[test]
    fn generous_budget_does_not_trip() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(d.check("x").is_ok());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
        assert!(d.instant().is_some());
        assert_eq!(d.budget(), Some(Duration::from_secs(3600)));
    }

    #[test]
    fn cancel_flag_is_shared_across_clones() {
        let d = Deadline::cancellable();
        let clone = d.clone();
        assert!(clone.check("x").is_ok());
        d.cancel();
        assert!(d.cancel_requested());
        assert!(clone.cancel_requested());
        let err = clone.check("after-cancel").unwrap_err();
        assert_eq!(err.phase, "after-cancel");
        assert_eq!(clone.remaining(), Some(Duration::ZERO));
        // No wall clock was ever armed.
        assert!(clone.instant().is_none());
    }
}
