//! On-disk binary CSR cache.
//!
//! Parsing a million-edge text file costs seconds; the CSR arrays it
//! produces are a few dozen megabytes that read back in milliseconds.
//! This module persists a [`Graph`] in a versioned little-endian binary
//! form next to its source (`<source>.csrbin`), stamped with the
//! source's length and mtime so an edited edge list invalidates its
//! cache automatically, and checksummed so a torn write surfaces as a
//! clean diagnostic instead of a corrupt graph.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "SDNDCSR" + version byte    8 B
//! flags  bit 0 = weighted, bit 1 = has source stamp    4 B
//! n      node count                  8 B
//! slots  directed-edge slot count    8 B
//! stamp  source len u64, mtime secs u64, mtime nanos u32   (flagged)
//! offsets  (n + 1) × u64
//! adj      slots × u32
//! weights  slots × f64               (flagged)
//! ids      n × u64
//! crc32    over everything above     4 B
//! ```
//!
//! [`read_cache`] distinguishes *stale* (source changed, format version
//! bumped — silently rebuild) from *corrupt* (checksum or structural
//! validation failed — something is wrong and worth reporting): the two
//! need different reactions from callers.

use super::{DatasetError, SourceStamp};
use crate::dataset::inflate::{crc32, crc32_update};
use crate::{Graph, NodeId};
use std::path::{Path, PathBuf};

/// Magic prefix of every cache file; the trailing byte is the format
/// version, bumped whenever the layout changes so old caches read as
/// stale rather than corrupt.
const MAGIC: &[u8; 8] = b"SDNDCSR\x01";

const FLAG_WEIGHTED: u32 = 1 << 0;
const FLAG_STAMPED: u32 = 1 << 1;

/// Where the cache of `source` lives: the same path with `.csrbin`
/// appended (`graph.txt` → `graph.txt.csrbin`), so the pairing is
/// obvious in a directory listing and never collides across sources.
pub fn cache_path_for(source: &Path) -> PathBuf {
    let mut name = source.as_os_str().to_os_string();
    name.push(".csrbin");
    PathBuf::from(name)
}

/// Serializes `g` (optionally stamped with its source's identity) and
/// writes it atomically: to a `.tmp` sibling first, then renamed over
/// `path`, so readers never observe a half-written cache.
///
/// # Errors
///
/// [`DatasetError::Io`] if writing fails.
pub fn write_cache(
    path: &Path,
    g: &Graph,
    stamp: Option<&SourceStamp>,
) -> Result<(), DatasetError> {
    let io_err = |source| DatasetError::Io {
        path: path.to_path_buf(),
        source,
    };
    let mut buf = encode(g, stamp);
    buf.extend_from_slice(&crc32(&buf).to_le_bytes());
    let tmp = {
        let mut name = path.as_os_str().to_os_string();
        name.push(".tmp");
        PathBuf::from(name)
    };
    std::fs::write(&tmp, &buf).map_err(io_err)?;
    std::fs::rename(&tmp, path).map_err(io_err)
}

/// Content hash of a graph, as [`Graph::content_hash`] exposes it:
/// the slicing-by-16 CRC32 of the canonical *unstamped* `.csrbin`
/// encoding, widened to 64 bits by chaining a second CRC pass seeded
/// with the first. Everything a cache file persists — CSR structure,
/// weights, original node ids — feeds the hash; the source stamp
/// (mtime/len) deliberately does not, so the same graph hashes the
/// same regardless of which file it came from.
pub(crate) fn content_hash(g: &Graph) -> u64 {
    let body = encode(g, None);
    let lo = crc32(&body);
    let hi = crc32_update(lo, &body);
    (u64::from(hi) << 32) | u64::from(lo)
}

fn encode(g: &Graph, stamp: Option<&SourceStamp>) -> Vec<u8> {
    let n = g.n();
    let slots = g.directed_edges();
    let mut flags = 0u32;
    if g.is_weighted() {
        flags |= FLAG_WEIGHTED;
    }
    if stamp.is_some() {
        flags |= FLAG_STAMPED;
    }
    let mut buf = Vec::with_capacity(44 + (n + 1) * 8 + slots * 4 + n * 8 + slots * 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&flags.to_le_bytes());
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    buf.extend_from_slice(&(slots as u64).to_le_bytes());
    if let Some(s) = stamp {
        buf.extend_from_slice(&s.len.to_le_bytes());
        buf.extend_from_slice(&s.mtime_secs.to_le_bytes());
        buf.extend_from_slice(&s.mtime_nanos.to_le_bytes());
    }
    for v in g.nodes() {
        buf.extend_from_slice(&(g.out_slot_range(v).start as u64).to_le_bytes());
    }
    buf.extend_from_slice(&(slots as u64).to_le_bytes());
    for v in g.nodes() {
        for &nb in g.neighbors(v) {
            buf.extend_from_slice(&(nb.index() as u32).to_le_bytes());
        }
    }
    if let Some(ws) = g.weights() {
        for &w in ws {
            buf.extend_from_slice(&w.to_le_bytes());
        }
    }
    for v in g.nodes() {
        buf.extend_from_slice(&g.id_of(v).to_le_bytes());
    }
    buf
}

/// Cursor over an untrusted byte buffer; every read is bounds-checked
/// and a short buffer reports as a truncation diagnostic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], DatasetError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(corrupt(self.path, "file is truncated")),
        }
    }

    fn u32(&mut self) -> Result<u32, DatasetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DatasetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn corrupt(path: &Path, what: impl Into<String>) -> DatasetError {
    DatasetError::Cache {
        path: path.to_path_buf(),
        what: what.into(),
    }
}

fn stale(path: &Path, why: impl Into<String>) -> DatasetError {
    DatasetError::Stale {
        path: path.to_path_buf(),
        why: why.into(),
    }
}

/// Reads a cache file back into a [`Graph`].
///
/// When `expect` is given, the stored source stamp must match it —
/// a mismatch (or a stampless cache) comes back as
/// [`DatasetError::Stale`], the caller's cue to reparse the source.
/// Checksum or structural violations come back as
/// [`DatasetError::Cache`]; the untrusted header arithmetic is fully
/// checked, so no input can panic or over-allocate past the file size.
///
/// # Errors
///
/// [`DatasetError::Io`], [`DatasetError::Stale`], or
/// [`DatasetError::Cache`] as described above.
pub fn read_cache(path: &Path, expect: Option<&SourceStamp>) -> Result<Graph, DatasetError> {
    let buf = std::fs::read(path).map_err(|source| DatasetError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    // Checksum first: everything after this sees bit-exact written data,
    // so any remaining violation means a buggy or forged writer.
    if buf.len() < MAGIC.len() + 4 {
        return Err(corrupt(path, "file is truncated"));
    }
    let (body, tail) = buf.split_at(buf.len() - 4);
    let mut r = Reader {
        buf: body,
        pos: 0,
        path,
    };
    let magic = r.take(8)?;
    if magic != MAGIC {
        if &magic[..7] == b"SDNDCSR" {
            return Err(stale(
                path,
                format!("format version {}, this build reads {}", magic[7], MAGIC[7]),
            ));
        }
        return Err(corrupt(path, "bad magic bytes (not a CSR cache)"));
    }
    let stored_crc = u32::from_le_bytes(tail.try_into().unwrap());
    let actual_crc = crc32(body);
    if stored_crc != actual_crc {
        return Err(corrupt(
            path,
            format!("checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"),
        ));
    }
    let flags = r.u32()?;
    if flags & !(FLAG_WEIGHTED | FLAG_STAMPED) != 0 {
        return Err(corrupt(path, "unknown flag bits set"));
    }
    let n = usize::try_from(r.u64()?).map_err(|_| corrupt(path, "node count overflows usize"))?;
    let slots =
        usize::try_from(r.u64()?).map_err(|_| corrupt(path, "slot count overflows usize"))?;
    if n as u64 > u32::MAX as u64 + 1 {
        return Err(corrupt(path, "node count exceeds the u32 index space"));
    }
    let stamp = if flags & FLAG_STAMPED != 0 {
        Some(SourceStamp {
            len: r.u64()?,
            mtime_secs: r.u64()?,
            mtime_nanos: r.u32()?,
        })
    } else {
        None
    };
    if let Some(expect) = expect {
        match &stamp {
            Some(s) if s == expect => {}
            Some(_) => {
                return Err(stale(
                    path,
                    "source file changed since the cache was written",
                ))
            }
            None => return Err(stale(path, "cache carries no source stamp")),
        }
    }
    // Sizes are now known; verify the remaining length in one checked
    // expression before slicing anything.
    let weighted = flags & FLAG_WEIGHTED != 0;
    let need = (n as u64 + 1)
        .checked_mul(8)
        .and_then(|b| (slots as u64).checked_mul(4).and_then(|s| b.checked_add(s)))
        .and_then(|b| {
            let per_slot = if weighted { 8u64 } else { 0 };
            (slots as u64)
                .checked_mul(per_slot)
                .and_then(|s| b.checked_add(s))
        })
        .and_then(|b| (n as u64).checked_mul(8).and_then(|s| b.checked_add(s)))
        .filter(|&b| b == (body.len() - r.pos) as u64);
    if need.is_none() {
        return Err(corrupt(path, "section sizes disagree with file length"));
    }
    // Decode each section by extending from an exact-size iterator (no
    // per-element capacity checks), then range-check in one sequential
    // pass — this path runs per warm load, so constants matter.
    let mut offsets: Vec<usize> = Vec::with_capacity(n + 1);
    offsets.extend(
        r.take((n + 1) * 8)?
            .chunks_exact(8)
            // Saturate rather than truncate on 32-bit hosts; saturated
            // values then fail the `offsets[n] == slots` gate below.
            .map(|c| {
                usize::try_from(u64::from_le_bytes(c.try_into().unwrap())).unwrap_or(usize::MAX)
            }),
    );
    if offsets[0] != 0 || offsets[n] != slots || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt(path, "offsets are not monotone over the slots"));
    }
    let mut adj: Vec<NodeId> = Vec::with_capacity(slots);
    adj.extend(
        r.take(slots * 4)?
            .chunks_exact(4)
            .map(|c| NodeId::new(u32::from_le_bytes(c.try_into().unwrap()) as usize)),
    );
    let weights = if weighted {
        let mut ws: Vec<f64> = Vec::with_capacity(slots);
        ws.extend(
            r.take(slots * 8)?
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap())),
        );
        Some(ws)
    } else {
        None
    };
    let mut ids: Vec<u64> = Vec::with_capacity(n);
    ids.extend(
        r.take(n * 8)?
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap())),
    );
    validate_structure(path, n, &offsets, &adj, weights.as_deref(), &ids)?;
    Ok(Graph::from_parts(offsets, adj, ids, weights))
}

/// The splitmix64 finalizer: a bijective mix of `u64`, so distinct
/// inputs never collide and XOR-cancellation of two different edges is
/// impossible.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Enforces the [`Graph`] invariants the rest of the codebase assumes:
/// in-range neighbors, strictly ascending rows (sorted, no duplicates,
/// no self-loops), symmetric adjacency with matching weights on both
/// orientations, finite non-negative weights, and injective
/// identifiers. `O(n log n + m)` with a single sequential sweep over
/// the adjacency — this runs on every warm cache load, so it must not
/// cost a random access per edge the way a transpose walk would, nor
/// re-traverse the (multi-megabyte) arrays once per check.
///
/// Symmetry (and weight agreement across orientations): strict rows
/// mean each directed pair occurs at most once, so the adjacency is
/// symmetric iff every unordered pair occurs exactly twice — iff the
/// XOR of a bijective mix of (min, max, weight bits) over all slots
/// cancels to zero. One asymmetric edge (or one weight mismatch)
/// always trips this, since its mixed key appears an odd number of
/// times and `mix64` never collides; only >= 4 distinct odd-count
/// keys could conspire to cancel, which no accidental corruption or
/// buggy writer produces (the checksum above already rules out bit
/// rot). This replaces an exact reverse-cursor walk that cost a
/// cache-missing random read per edge.
fn validate_structure(
    path: &Path,
    n: usize,
    offsets: &[usize],
    adj: &[NodeId],
    weights: Option<&[f64]>,
    ids: &[u64],
) -> Result<(), DatasetError> {
    let mut acc = 0u64;
    for u in 0..n {
        // `prev` starts at usize::MAX, which no in-range neighbor can
        // equal, so the ascending check skips the row's first element
        // without a separate branch structure.
        let mut prev = usize::MAX;
        for (e, &v) in (offsets[u]..offsets[u + 1]).zip(&adj[offsets[u]..offsets[u + 1]]) {
            let vi = v.index();
            if vi >= n {
                return Err(corrupt(path, "neighbor index out of range"));
            }
            if prev != usize::MAX && prev >= vi {
                return Err(corrupt(path, "adjacency row is not strictly ascending"));
            }
            prev = vi;
            if vi == u {
                return Err(corrupt(path, "self-loop in adjacency"));
            }
            let (a, b) = if u < vi {
                (u as u64, vi as u64)
            } else {
                (vi as u64, u as u64)
            };
            let mut key = a << 32 | b;
            if let Some(ws) = weights {
                let w = ws[e];
                if !(w.is_finite() && w >= 0.0) {
                    return Err(corrupt(path, "non-finite or negative edge weight"));
                }
                key ^= w.to_bits().rotate_left(20);
            }
            acc ^= mix64(key);
        }
    }
    if acc != 0 {
        return Err(corrupt(
            path,
            "adjacency is not symmetric (or weights differ between orientations)",
        ));
    }
    // Identifier injectivity: the common case is the identity labeling
    // the text loaders produce — detect it in one sequential pass and
    // skip the sort.
    if !ids.iter().enumerate().all(|(i, &id)| id == i as u64) {
        let mut sorted_ids = ids.to_vec();
        sorted_ids.sort_unstable();
        if sorted_ids.windows(2).any(|w| w[0] == w[1]) {
            return Err(corrupt(path, "node identifiers are not unique"));
        }
    }
    Ok(())
}
