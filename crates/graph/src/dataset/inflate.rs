//! Minimal pure-Rust gzip decoder (RFC 1952 over RFC 1951 DEFLATE).
//!
//! The dataset loaders accept `.gz` edge lists, and the workspace bans
//! both external crates and `unsafe`, so this module implements the
//! subset of DEFLATE a decoder needs from scratch: stored, fixed-Huffman
//! and dynamic-Huffman blocks, decoded with the canonical per-length
//! counting scheme of Mark Adler's `puff.c` reference decoder. It favors
//! clarity over speed — bit-at-a-time Huffman walks are plenty for
//! ingesting compressed text once before the binary cache takes over —
//! and verifies both the CRC32 and the ISIZE trailer of every member.
//! Concatenated multi-member files (the output of `cat a.gz b.gz`)
//! decode to the concatenated payloads, as `gzip -d` would produce.

use std::error::Error;
use std::fmt;

/// Errors from [`gunzip`]. Every variant pinpoints what the decoder was
/// looking at, so a corrupt download fails with a diagnostic rather
/// than a panic or silent garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InflateError {
    /// The input ended in the middle of a header, block, or trailer.
    TruncatedInput,
    /// A structural invariant of the gzip/DEFLATE format was violated.
    Corrupt(&'static str),
    /// The decompressed data does not match the stored CRC32.
    ChecksumMismatch {
        /// CRC32 recorded in the gzip trailer.
        expected: u32,
        /// CRC32 of what was actually decompressed.
        actual: u32,
    },
}

impl fmt::Display for InflateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InflateError::TruncatedInput => write!(f, "gzip stream is truncated"),
            InflateError::Corrupt(what) => write!(f, "corrupt gzip stream: {what}"),
            InflateError::ChecksumMismatch { expected, actual } => write!(
                f,
                "gzip checksum mismatch: trailer says {expected:#010x}, data hashes to {actual:#010x}"
            ),
        }
    }
}

impl Error for InflateError {}

// ---------------------------------------------------------------------
// CRC32 (the gzip/zlib polynomial), with a const-fn table so the whole
// thing stays allocation- and unsafe-free.
// ---------------------------------------------------------------------

/// Slicing-by-16 tables: `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[j][b]` is the CRC of byte `b` followed by `j` zero
/// bytes, letting the hot loop fold sixteen input bytes per iteration.
/// The binary cache checksums tens of megabytes per load, so the
/// byte-at-a-time loop (~0.5 GB/s) would dominate warm loads; slicing
/// lands in the multiple-GB/s range with no `unsafe` and no intrinsics,
/// and the 16 KiB of tables sit comfortably in L1.
const fn crc32_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 16 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = t[0][(t[j - 1][i] & 0xff) as usize] ^ (t[j - 1][i] >> 8);
            i += 1;
        }
        j += 1;
    }
    t
}

static CRC32_TABLES: [[u32; 256]; 16] = crc32_tables();

/// Feeds `data` into a running CRC32 state (start from 0, chain the
/// return value). Shared with the binary cache, which stamps its files
/// with the same checksum.
pub(crate) fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    state = !state;
    let mut chunks = data.chunks_exact(16);
    for c in chunks.by_ref() {
        let a = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ state;
        let b = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        let d = u32::from_le_bytes([c[8], c[9], c[10], c[11]]);
        let e = u32::from_le_bytes([c[12], c[13], c[14], c[15]]);
        state = t[15][(a & 0xff) as usize]
            ^ t[14][(a >> 8 & 0xff) as usize]
            ^ t[13][(a >> 16 & 0xff) as usize]
            ^ t[12][(a >> 24) as usize]
            ^ t[11][(b & 0xff) as usize]
            ^ t[10][(b >> 8 & 0xff) as usize]
            ^ t[9][(b >> 16 & 0xff) as usize]
            ^ t[8][(b >> 24) as usize]
            ^ t[7][(d & 0xff) as usize]
            ^ t[6][(d >> 8 & 0xff) as usize]
            ^ t[5][(d >> 16 & 0xff) as usize]
            ^ t[4][(d >> 24) as usize]
            ^ t[3][(e & 0xff) as usize]
            ^ t[2][(e >> 8 & 0xff) as usize]
            ^ t[1][(e >> 16 & 0xff) as usize]
            ^ t[0][(e >> 24) as usize];
    }
    for &b in chunks.remainder() {
        state = t[0][((state ^ b as u32) & 0xff) as usize] ^ (state >> 8);
    }
    !state
}

/// CRC32 of `data` in one call.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    crc32_update(0, data)
}

// ---------------------------------------------------------------------
// Bit-level reader. DEFLATE packs bits LSB-first within each byte.
// ---------------------------------------------------------------------

struct BitReader<'a> {
    data: &'a [u8],
    /// Index of the next byte to pull into the bit buffer.
    pos: usize,
    bitbuf: u32,
    bitcnt: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8], pos: usize) -> BitReader<'a> {
        BitReader {
            data,
            pos,
            bitbuf: 0,
            bitcnt: 0,
        }
    }

    /// Reads `n <= 15` bits, LSB-first.
    fn bits(&mut self, n: u32) -> Result<u32, InflateError> {
        while self.bitcnt < n {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or(InflateError::TruncatedInput)?;
            self.bitbuf |= (byte as u32) << self.bitcnt;
            self.bitcnt += 8;
            self.pos += 1;
        }
        let v = self.bitbuf & ((1u32 << n) - 1);
        self.bitbuf >>= n;
        self.bitcnt -= n;
        Ok(v)
    }

    /// Discards the partial byte in flight and returns unread whole
    /// bytes to the input, so `pos` is the next byte boundary. Stored
    /// blocks and the gzip trailer are byte-aligned.
    fn align_to_byte(&mut self) {
        self.pos -= (self.bitcnt / 8) as usize;
        self.bitbuf = 0;
        self.bitcnt = 0;
    }
}

// ---------------------------------------------------------------------
// Canonical Huffman decoding, puff-style: all the decoder needs is the
// number of codes of each length plus the symbols in canonical order.
// ---------------------------------------------------------------------

const MAX_BITS: usize = 15;

struct Huffman {
    /// `count[len]` = number of codes of bit length `len`.
    count: [u16; MAX_BITS + 1],
    /// Symbols sorted by (code length, symbol value) — canonical order.
    symbol: Vec<u16>,
}

impl Huffman {
    /// Builds the decoding tables from per-symbol code lengths (0 =
    /// symbol unused). Rejects over-subscribed length sets; incomplete
    /// sets are allowed (the fixed distance code is one), and simply
    /// make some bit patterns undecodable.
    fn new(lengths: &[u16]) -> Result<Huffman, InflateError> {
        let mut count = [0u16; MAX_BITS + 1];
        for &len in lengths {
            debug_assert!((len as usize) <= MAX_BITS);
            count[len as usize] += 1;
        }
        if count[0] as usize == lengths.len() {
            return Err(InflateError::Corrupt("Huffman code with no symbols"));
        }
        let mut left = 1i32;
        for &c in &count[1..] {
            left = (left << 1) - c as i32;
            if left < 0 {
                return Err(InflateError::Corrupt("over-subscribed Huffman code"));
            }
        }
        // offs[len] = index of the first symbol of that length in the
        // canonical ordering.
        let mut offs = [0u16; MAX_BITS + 1];
        for len in 1..MAX_BITS {
            offs[len + 1] = offs[len] + count[len];
        }
        let mut symbol = vec![0u16; lengths.len() - count[0] as usize];
        for (sym, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbol[offs[len as usize] as usize] = sym as u16;
                offs[len as usize] += 1;
            }
        }
        Ok(Huffman { count, symbol })
    }

    /// Decodes one symbol, one bit at a time: at each length, `first`
    /// is the first canonical code and `index` the first symbol slot,
    /// so a code below `first + count` resolves immediately.
    fn decode(&self, br: &mut BitReader<'_>) -> Result<u16, InflateError> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..=MAX_BITS {
            code |= br.bits(1)? as i32;
            let count = self.count[len] as i32;
            if code - count < first {
                return Ok(self.symbol[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(InflateError::Corrupt("invalid Huffman code (over 15 bits)"))
    }
}

// Length and distance decoding tables from RFC 1951 §3.2.5: base value
// plus number of extra bits per symbol.
const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Order in which the code-length-code lengths are stored (RFC 1951).
const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Decodes the shared literal/length + distance loop of compressed
/// blocks into `out`.
fn inflate_codes(
    br: &mut BitReader<'_>,
    litlen: &Huffman,
    dist: &Huffman,
    out: &mut Vec<u8>,
) -> Result<(), InflateError> {
    loop {
        let sym = litlen.decode(br)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let idx = (sym - 257) as usize;
                let len = LEN_BASE[idx] as usize + br.bits(LEN_EXTRA[idx])? as usize;
                let dsym = dist.decode(br)? as usize;
                if dsym >= 30 {
                    return Err(InflateError::Corrupt("invalid distance symbol"));
                }
                let distance = DIST_BASE[dsym] as usize + br.bits(DIST_EXTRA[dsym])? as usize;
                if distance > out.len() {
                    return Err(InflateError::Corrupt("match distance before output start"));
                }
                // Overlapping matches (distance < len) are the RLE idiom
                // of DEFLATE, so copy byte by byte.
                let start = out.len() - distance;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            _ => return Err(InflateError::Corrupt("invalid literal/length symbol")),
        }
    }
}

/// Builds the literal/length and distance codes of a dynamic block
/// (RFC 1951 §3.2.7): a Huffman code for code lengths, then the two
/// real codes' lengths compressed with it.
fn dynamic_tables(br: &mut BitReader<'_>) -> Result<(Huffman, Huffman), InflateError> {
    let hlit = br.bits(5)? as usize + 257;
    let hdist = br.bits(5)? as usize + 1;
    let hclen = br.bits(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(InflateError::Corrupt("too many literal or distance codes"));
    }
    let mut clen_lengths = [0u16; 19];
    for &slot in CLEN_ORDER.iter().take(hclen) {
        clen_lengths[slot] = br.bits(3)? as u16;
    }
    let clen = Huffman::new(&clen_lengths)?;
    let mut lengths = vec![0u16; hlit + hdist];
    let mut i = 0;
    while i < lengths.len() {
        let sym = clen.decode(br)?;
        match sym {
            0..=15 => {
                lengths[i] = sym;
                i += 1;
            }
            16 => {
                if i == 0 {
                    return Err(InflateError::Corrupt(
                        "length repeat with no previous length",
                    ));
                }
                let prev = lengths[i - 1];
                let n = 3 + br.bits(2)? as usize;
                if i + n > lengths.len() {
                    return Err(InflateError::Corrupt("length repeat past table end"));
                }
                lengths[i..i + n].fill(prev);
                i += n;
            }
            17 | 18 => {
                let n = if sym == 17 {
                    3 + br.bits(3)? as usize
                } else {
                    11 + br.bits(7)? as usize
                };
                if i + n > lengths.len() {
                    return Err(InflateError::Corrupt("length repeat past table end"));
                }
                i += n; // already zero
            }
            _ => return Err(InflateError::Corrupt("invalid code-length symbol")),
        }
    }
    if lengths[256] == 0 {
        return Err(InflateError::Corrupt(
            "dynamic block has no end-of-block code",
        ));
    }
    let litlen = Huffman::new(&lengths[..hlit])?;
    let dist = Huffman::new(&lengths[hlit..])?;
    Ok((litlen, dist))
}

/// The fixed-Huffman tables of RFC 1951 §3.2.6, built on demand (they
/// are tiny and `.gz` ingestion happens once per file).
fn fixed_tables() -> (Huffman, Huffman) {
    let mut litlen_lengths = [0u16; 288];
    for (sym, len) in litlen_lengths.iter_mut().enumerate() {
        *len = match sym {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    let dist_lengths = [5u16; 30];
    let litlen = Huffman::new(&litlen_lengths).expect("fixed litlen code is well-formed");
    let dist = Huffman::new(&dist_lengths).expect("fixed distance code is well-formed");
    (litlen, dist)
}

/// Inflates one DEFLATE stream starting at byte offset `start`,
/// appending to `out`. Returns the byte offset just past the stream.
fn inflate(data: &[u8], start: usize, out: &mut Vec<u8>) -> Result<usize, InflateError> {
    let mut br = BitReader::new(data, start);
    loop {
        let bfinal = br.bits(1)?;
        let btype = br.bits(2)?;
        match btype {
            0 => {
                br.align_to_byte();
                let pos = br.pos;
                let header = data.get(pos..pos + 4).ok_or(InflateError::TruncatedInput)?;
                let len = u16::from_le_bytes([header[0], header[1]]);
                let nlen = u16::from_le_bytes([header[2], header[3]]);
                if len != !nlen {
                    return Err(InflateError::Corrupt("stored block length check failed"));
                }
                let body = data
                    .get(pos + 4..pos + 4 + len as usize)
                    .ok_or(InflateError::TruncatedInput)?;
                out.extend_from_slice(body);
                br = BitReader::new(data, pos + 4 + len as usize);
            }
            1 => {
                let (litlen, dist) = fixed_tables();
                inflate_codes(&mut br, &litlen, &dist, out)?;
            }
            2 => {
                let (litlen, dist) = dynamic_tables(&mut br)?;
                inflate_codes(&mut br, &litlen, &dist, out)?;
            }
            _ => return Err(InflateError::Corrupt("reserved block type")),
        }
        if bfinal == 1 {
            br.align_to_byte();
            return Ok(br.pos);
        }
    }
}

/// Parses one gzip member header starting at `pos`; returns the offset
/// of the DEFLATE stream.
fn parse_member_header(data: &[u8], pos: usize) -> Result<usize, InflateError> {
    let header = data
        .get(pos..pos + 10)
        .ok_or(InflateError::TruncatedInput)?;
    if header[0] != 0x1f || header[1] != 0x8b {
        return Err(InflateError::Corrupt("bad gzip magic bytes"));
    }
    if header[2] != 8 {
        return Err(InflateError::Corrupt(
            "unsupported compression method (not deflate)",
        ));
    }
    let flg = header[3];
    if flg & 0xe0 != 0 {
        return Err(InflateError::Corrupt("reserved gzip header flags set"));
    }
    // MTIME, XFL, OS: ignored.
    let mut p = pos + 10;
    if flg & 0x04 != 0 {
        // FEXTRA: 2-byte little-endian length, then that many bytes.
        let lenb = data.get(p..p + 2).ok_or(InflateError::TruncatedInput)?;
        let xlen = u16::from_le_bytes([lenb[0], lenb[1]]) as usize;
        p += 2;
        if data.len() < p + xlen {
            return Err(InflateError::TruncatedInput);
        }
        p += xlen;
    }
    for flag in [0x08u8, 0x10] {
        // FNAME, FCOMMENT: NUL-terminated strings.
        if flg & flag != 0 {
            let nul = data[p..]
                .iter()
                .position(|&b| b == 0)
                .ok_or(InflateError::TruncatedInput)?;
            p += nul + 1;
        }
    }
    if flg & 0x02 != 0 {
        // FHCRC: 2-byte header checksum; presence-checked, not verified.
        if data.len() < p + 2 {
            return Err(InflateError::TruncatedInput);
        }
        p += 2;
    }
    Ok(p)
}

/// Decompresses a gzip file held in memory, verifying each member's
/// CRC32 and length trailer. Concatenated members decode back to back,
/// matching `gzip -d` semantics.
///
/// # Errors
///
/// [`InflateError`] if the stream is truncated, structurally corrupt,
/// or fails its checksum.
pub fn gunzip(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    loop {
        let deflate_start = parse_member_header(data, pos)?;
        let member_start = out.len();
        let trailer_at = inflate(data, deflate_start, &mut out)?;
        let trailer = data
            .get(trailer_at..trailer_at + 8)
            .ok_or(InflateError::TruncatedInput)?;
        let expected = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let actual = crc32(&out[member_start..]);
        if expected != actual {
            return Err(InflateError::ChecksumMismatch { expected, actual });
        }
        let isize_stored = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
        if isize_stored != (out.len() - member_start) as u32 {
            return Err(InflateError::Corrupt(
                "ISIZE trailer disagrees with output length",
            ));
        }
        pos = trailer_at + 8;
        if pos == data.len() {
            return Ok(out);
        }
    }
}

/// Wraps `data` in a valid single-member gzip file using only *stored*
/// (uncompressed) DEFLATE blocks.
///
/// This is a fixture helper, not a compressor: the output is slightly
/// larger than the input. Tests and benches use it to synthesize `.gz`
/// edge lists hermetically — no external `gzip` binary, no compression
/// crate — while still exercising the full decoder path ([`gunzip`]
/// verifies its CRC32 and ISIZE like any other member).
pub fn gzip_stored(data: &[u8]) -> Vec<u8> {
    // Header: magic, CM=deflate, no flags, zero MTIME, XFL=0, OS=unknown.
    let mut out = vec![0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xff];
    let mut chunks = data.chunks(u16::MAX as usize).peekable();
    if data.is_empty() {
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xff, 0xff]); // final empty stored block
    }
    while let Some(chunk) = chunks.next() {
        let bfinal: u8 = if chunks.peek().is_none() { 1 } else { 0 };
        out.push(bfinal); // btype=00 and byte padding are all zero bits
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `printf 'The quick brown fox jumps over the lazy dog\n' | gzip`
    /// — a real fixed-Huffman member, with the FNAME flag set.
    const FIXED_FIXTURE: &[u8] = &[
        0x1f, 0x8b, 0x08, 0x08, 0x22, 0x78, 0x76, 0x6a, 0x00, 0x03, 0x66, 0x69, 0x78, 0x31, 0x2e,
        0x74, 0x78, 0x74, 0x00, 0x0b, 0xc9, 0x48, 0x55, 0x28, 0x2c, 0xcd, 0x4c, 0xce, 0x56, 0x48,
        0x2a, 0xca, 0x2f, 0xcf, 0x53, 0x48, 0xcb, 0xaf, 0x50, 0xc8, 0x2a, 0xcd, 0x2d, 0x28, 0x56,
        0xc8, 0x2f, 0x4b, 0x2d, 0x52, 0x28, 0x01, 0x4a, 0xe7, 0x24, 0x56, 0x55, 0x2a, 0xa4, 0xe4,
        0xa7, 0x73, 0x01, 0x00, 0x38, 0xc1, 0x93, 0x6d, 0x2c, 0x00, 0x00, 0x00,
    ];

    /// `gzip -9` of a 3,583-byte synthetic edge list — a real
    /// dynamic-Huffman member with back-references.
    const DYNAMIC_FIXTURE: &[u8] = &[
        0x1f, 0x8b, 0x08, 0x00, 0x22, 0x78, 0x76, 0x6a, 0x02, 0xff, 0x35, 0x57, 0xb9, 0x6e, 0x15,
        0x41, 0x00, 0xeb, 0xf3, 0x15, 0x2b, 0xd1, 0xa3, 0xb9, 0x76, 0x8e, 0xff, 0x49, 0x84, 0x90,
        0x40, 0x14, 0xf0, 0xff, 0xc2, 0xd7, 0x14, 0x6b, 0x4f, 0xec, 0x22, 0x76, 0x8e, 0xf1, 0xbe,
        0x6f, 0xcf, 0xe7, 0xd7, 0xef, 0x3f, 0xcf, 0xd7, 0xe7, 0x8f, 0xaf, 0xe7, 0xd7, 0xcf, 0xbf,
        0xff, 0x3e, 0xca, 0x53, 0xf1, 0xb4, 0xa7, 0x7e, 0x7f, 0x3f, 0xea, 0xd3, 0xf0, 0x74, 0x9d,
        0xdb, 0xd3, 0xf1, 0x0c, 0x9d, 0xfb, 0x33, 0xf0, 0xbc, 0x3a, 0x8f, 0x87, 0xcf, 0xd4, 0xf9,
        0x7d, 0x26, 0x9e, 0xa5, 0xf3, 0x7c, 0x16, 0x9e, 0xad, 0xf3, 0x7a, 0x36, 0x9e, 0xa3, 0xf3,
        0x7e, 0x0e, 0x9e, 0x5a, 0xf4, 0x05, 0xa4, 0x42, 0xa8, 0xfe, 0x76, 0x10, 0xab, 0x30, 0xdf,
        0x1e, 0x72, 0x13, 0x3a, 0x02, 0xe5, 0x2e, 0x74, 0x0c, 0xca, 0x43, 0xe8, 0x28, 0x94, 0x8d,
        0x8e, 0x43, 0x79, 0x0a, 0x1d, 0x89, 0xf2, 0x12, 0x3a, 0x16, 0xe5, 0x2d, 0x74, 0x34, 0xca,
        0x87, 0xd8, 0x9c, 0x0e, 0x72, 0x2b, 0x42, 0xe7, 0x83, 0xdc, 0xaa, 0xd0, 0xf9, 0x20, 0xb7,
        0x26, 0xcc, 0x8f, 0xa8, 0xe1, 0x24, 0x74, 0x3e, 0xc8, 0x6d, 0x08, 0x9d, 0x0f, 0x72, 0x33,
        0x3a, 0x1f, 0xe4, 0x36, 0x85, 0xce, 0x07, 0xb9, 0x2d, 0xa1, 0xf3, 0x41, 0x6e, 0x5b, 0xe8,
        0x7c, 0x90, 0xdb, 0x21, 0x76, 0xe7, 0x83, 0xdc, 0x8b, 0xd0, 0xf9, 0x20, 0xf7, 0x2a, 0x74,
        0x3e, 0xc8, 0xbd, 0x09, 0x9d, 0x0f, 0x72, 0xef, 0xc2, 0xfc, 0x1a, 0x3b, 0x4e, 0x42, 0xe7,
        0x83, 0xdc, 0x8d, 0xce, 0x07, 0xb9, 0x4f, 0xa1, 0xf3, 0x41, 0xee, 0x4b, 0xe8, 0x7c, 0x90,
        0xfb, 0x16, 0x3a, 0x1f, 0xe4, 0x7e, 0x88, 0xc3, 0xf9, 0x20, 0x8f, 0x22, 0x74, 0x3e, 0xc8,
        0xa3, 0x0a, 0x9d, 0x0f, 0xf2, 0x68, 0x42, 0xe7, 0x83, 0x3c, 0xba, 0xd0, 0xf9, 0x20, 0x8f,
        0x21, 0xcc, 0x9f, 0xda, 0xc0, 0x49, 0xe8, 0x7c, 0x90, 0xc7, 0x14, 0x3a, 0x1f, 0xe4, 0xb1,
        0x84, 0xce, 0x07, 0x79, 0x6c, 0xa1, 0xf3, 0x41, 0x1e, 0x87, 0xf8, 0x3a, 0x1f, 0xe4, 0xb7,
        0x08, 0x9d, 0x0f, 0xf2, 0x5b, 0x85, 0xce, 0x07, 0xf9, 0x6d, 0x42, 0xe7, 0x83, 0xfc, 0x76,
        0xa1, 0xf3, 0x41, 0x7e, 0x87, 0xd0, 0xf9, 0x20, 0xbf, 0xc6, 0xfc, 0x3b, 0xbc, 0x38, 0x09,
        0x9d, 0x0f, 0xf2, 0xbb, 0x84, 0xce, 0x07, 0xf9, 0xdd, 0x42, 0xe7, 0x83, 0xfc, 0x1e, 0xe2,
        0x74, 0x3e, 0xc8, 0xb3, 0x08, 0x9d, 0x0f, 0xf2, 0xac, 0x42, 0xe7, 0x83, 0x3c, 0x9b, 0xd0,
        0xf9, 0x20, 0xcf, 0x2e, 0x74, 0x3e, 0xc8, 0x73, 0x08, 0x9d, 0x0f, 0xf2, 0x34, 0x3a, 0x1f,
        0xe4, 0x39, 0x85, 0xf9, 0x97, 0x9d, 0x38, 0x09, 0x9d, 0x0f, 0xf2, 0xdc, 0x42, 0xe7, 0x83,
        0x3c, 0x0f, 0x71, 0x39, 0x1f, 0xe4, 0x55, 0x84, 0xce, 0x07, 0x79, 0x55, 0xa1, 0xf3, 0x41,
        0x5e, 0x4d, 0xe8, 0x7c, 0x90, 0x57, 0x17, 0x3a, 0x1f, 0xe4, 0x35, 0x84, 0xce, 0x07, 0x79,
        0x19, 0x9d, 0x0f, 0xf2, 0x9a, 0x42, 0xe7, 0x83, 0xbc, 0x96, 0x30, 0xd7, 0xca, 0xc2, 0x49,
        0xe8, 0x7c, 0x90, 0xd7, 0x21, 0x6e, 0xe7, 0x83, 0xbc, 0x8b, 0xd0, 0xf9, 0x20, 0xef, 0x2a,
        0x74, 0x3e, 0xc8, 0xbb, 0x09, 0x9d, 0x0f, 0xf2, 0xee, 0x42, 0xe7, 0x83, 0xbc, 0x87, 0xd0,
        0xf9, 0x20, 0x6f, 0xa3, 0xf3, 0x41, 0xde, 0x53, 0xe8, 0x7c, 0x90, 0xf7, 0x12, 0x3a, 0x1f,
        0xe4, 0xbd, 0x85, 0xb9, 0xfa, 0x90, 0xec, 0x10, 0x8f, 0xf3, 0x41, 0x3e, 0x45, 0xe8, 0x7c,
        0x90, 0x4f, 0x15, 0x3a, 0x1f, 0xe4, 0xd3, 0x84, 0xce, 0x07, 0xf9, 0x74, 0xa1, 0xf3, 0x41,
        0x3e, 0x43, 0xe8, 0x7c, 0x90, 0x8f, 0xd1, 0xf9, 0x20, 0x9f, 0x29, 0x74, 0x3e, 0xc8, 0x67,
        0x09, 0x9d, 0x0f, 0xf2, 0xd9, 0x42, 0xe7, 0x83, 0x7c, 0x0e, 0xb1, 0x96, 0x5c, 0xcf, 0xbc,
        0x9f, 0x8b, 0xe9, 0x5e, 0xd1, 0x85, 0xe7, 0x70, 0xae, 0x69, 0x7a, 0xa5, 0x85, 0x73, 0x55,
        0xd3, 0x2b, 0x3d, 0x9c, 0xeb, 0x9a, 0x5e, 0x19, 0xe1, 0x5c, 0xd9, 0xf4, 0xca, 0xe5, 0x5c,
        0xdb, 0xf4, 0xca, 0x0c, 0xe7, 0xea, 0xa6, 0x57, 0x56, 0x38, 0xd7, 0x37, 0xbd, 0xb2, 0xc3,
        0xb9, 0xc2, 0xe9, 0x95, 0x63, 0xce, 0xc8, 0xc8, 0xc3, 0xce, 0x98, 0xd3, 0x43, 0x5b, 0x53,
        0xc3, 0x77, 0x6e, 0x2a, 0xcf, 0xe1, 0xf4, 0xa0, 0xc7, 0xd1, 0x11, 0xa7, 0x07, 0x3d, 0x0e,
        0x8f, 0x38, 0x3d, 0xe8, 0xd5, 0xcb, 0xe9, 0x41, 0x8f, 0x03, 0x24, 0x4e, 0x0f, 0x7a, 0x1c,
        0x21, 0x71, 0x7a, 0xd0, 0xe3, 0x10, 0x89, 0xd3, 0x83, 0x1e, 0xc7, 0x88, 0x7c, 0xe7, 0x88,
        0x1e, 0x07, 0x49, 0x9c, 0x1e, 0xf4, 0x30, 0x4a, 0xe6, 0xf4, 0xa0, 0x87, 0x61, 0x32, 0xdf,
        0xe9, 0x6c, 0x3c, 0x87, 0xd3, 0x83, 0x1e, 0x06, 0xca, 0x9c, 0x1e, 0xf4, 0xda, 0xe5, 0xf4,
        0xa0, 0x87, 0xa1, 0x32, 0xa7, 0x07, 0x3d, 0x8c, 0x95, 0x39, 0x3d, 0xe8, 0x61, 0xb0, 0xcc,
        0xe9, 0x41, 0x0f, 0xa3, 0x25, 0xce, 0x6c, 0xc9, 0xc3, 0x70, 0x99, 0xd3, 0x83, 0x1e, 0xc6,
        0xcb, 0x9c, 0x1e, 0xf4, 0x30, 0x60, 0xe6, 0xf4, 0xa0, 0x87, 0x11, 0x33, 0xdf, 0xd7, 0x80,
        0xce, 0x73, 0x38, 0x3d, 0xe8, 0xf5, 0xcb, 0xe9, 0x41, 0x0f, 0x83, 0x66, 0x4e, 0x0f, 0x7a,
        0x18, 0x35, 0x73, 0x7a, 0xd0, 0xc3, 0xb0, 0x99, 0xd3, 0x83, 0x1e, 0xc6, 0x4d, 0x9c, 0x79,
        0x93, 0x87, 0x81, 0x33, 0xa7, 0x07, 0x3d, 0x8c, 0x9c, 0x39, 0x3d, 0xe8, 0x61, 0xe8, 0xcc,
        0xe9, 0x41, 0x0f, 0x63, 0x67, 0x4e, 0x0f, 0x7a, 0x18, 0x3c, 0xf3, 0x7d, 0xa5, 0x19, 0x3c,
        0x87, 0xd3, 0x83, 0x1e, 0x86, 0xcf, 0x9c, 0x1e, 0xf4, 0x30, 0x7e, 0xe6, 0xf4, 0xa0, 0x87,
        0x01, 0x34, 0xa7, 0x07, 0x3d, 0x8c, 0xa0, 0x38, 0x33, 0x28, 0x0f, 0x43, 0x68, 0x4e, 0x0f,
        0x7a, 0x18, 0x43, 0x73, 0x7a, 0xd0, 0xc3, 0x20, 0x9a, 0xd3, 0x83, 0x1e, 0x46, 0xd1, 0x9c,
        0x1e, 0xf4, 0x30, 0x8c, 0xe6, 0xf4, 0xa0, 0xf7, 0x5e, 0xbe, 0xaf, 0x67, 0x2f, 0xcf, 0xe1,
        0xf4, 0xa0, 0x87, 0x91, 0x34, 0xa7, 0x07, 0x3d, 0x0c, 0xa5, 0x39, 0x3d, 0xe8, 0x61, 0x2c,
        0xc5, 0x99, 0x4b, 0x79, 0x18, 0x4c, 0x73, 0x7a, 0xd0, 0xc3, 0x68, 0x9a, 0xd3, 0x83, 0x1e,
        0x86, 0xd3, 0x9c, 0x1e, 0xf4, 0x30, 0x9e, 0xe6, 0xf4, 0xa0, 0x87, 0x01, 0x35, 0xa7, 0x07,
        0xbd, 0x79, 0x39, 0x3d, 0xe8, 0x61, 0x48, 0xcd, 0xf7, 0x55, 0x73, 0xf2, 0x1c, 0x4e, 0x0f,
        0x7a, 0x18, 0x54, 0x73, 0x7a, 0xd0, 0xc3, 0xa8, 0x8a, 0x33, 0xab, 0xf2, 0x30, 0xac, 0xe6,
        0xf4, 0xa0, 0x87, 0x71, 0x35, 0xa7, 0x07, 0x3d, 0x0c, 0xac, 0x39, 0x3d, 0xe8, 0x61, 0x64,
        0xcd, 0xe9, 0x41, 0x0f, 0x43, 0x6b, 0x4e, 0x0f, 0x7a, 0xeb, 0x72, 0x7a, 0xd0, 0xc3, 0xe0,
        0x9a, 0xd3, 0x83, 0x1e, 0x46, 0xd7, 0x7c, 0x5f, 0x9b, 0x17, 0xcf, 0xe1, 0xf4, 0xa0, 0x87,
        0xf1, 0x15, 0x67, 0x7e, 0xe5, 0x61, 0x80, 0xcd, 0xe9, 0x41, 0x0f, 0x23, 0x6c, 0x4e, 0x0f,
        0x7a, 0x18, 0x62, 0x73, 0x7a, 0xd0, 0xc3, 0x18, 0x9b, 0xd3, 0x83, 0x1e, 0x06, 0xd9, 0x9c,
        0x1e, 0xf4, 0xf6, 0xe5, 0xf4, 0xa0, 0x87, 0x61, 0x36, 0xa7, 0x07, 0x3d, 0x8c, 0xb3, 0x39,
        0x3d, 0xe8, 0x61, 0xa0, 0xcd, 0xf7, 0x23, 0x00, 0xf3, 0x1f, 0x73, 0x66, 0x5a, 0x1e, 0x86,
        0xda, 0x9c, 0x1e, 0xf4, 0x30, 0xd6, 0xe6, 0xf4, 0xa0, 0x87, 0xc1, 0x36, 0xa7, 0x07, 0x3d,
        0x8c, 0xb6, 0x39, 0x3d, 0xe8, 0x61, 0xb8, 0xcd, 0xe9, 0x41, 0xef, 0x5c, 0x4e, 0x0f, 0x7a,
        0x18, 0x70, 0x73, 0x7a, 0xd0, 0xc3, 0x88, 0x9b, 0xd3, 0x83, 0x1e, 0x86, 0xdc, 0x9c, 0x1e,
        0xf4, 0x30, 0xe6, 0xe4, 0x56, 0xee, 0xc7, 0x19, 0x7e, 0x9e, 0x29, 0x61, 0xf7, 0xf8, 0x0f,
        0xf6, 0xd6, 0xdb, 0x87, 0xff, 0x0d, 0x00, 0x00,
    ];

    fn dynamic_fixture_plaintext() -> Vec<u8> {
        let mut text = String::from("# demo edge list\n");
        for u in 0..200 {
            text.push_str(&format!("{u} {}\n", u + 1));
            text.push_str(&format!("{u} {} 1.5\n", u + 2));
        }
        text.into_bytes()
    }

    #[test]
    fn decodes_real_fixed_huffman_member() {
        let out = gunzip(FIXED_FIXTURE).unwrap();
        assert_eq!(out, b"The quick brown fox jumps over the lazy dog\n");
    }

    #[test]
    fn decodes_real_dynamic_huffman_member() {
        let out = gunzip(DYNAMIC_FIXTURE).unwrap();
        assert_eq!(out, dynamic_fixture_plaintext());
    }

    #[test]
    fn stored_writer_round_trips() {
        for data in [
            &b""[..],
            b"x",
            b"0 1\n1 2\n2 3\n",
            &vec![0xabu8; 200_000], // forces multiple stored blocks
        ] {
            let gz = gzip_stored(data);
            assert_eq!(gunzip(&gz).unwrap(), data, "len {}", data.len());
        }
    }

    #[test]
    fn concatenated_members_decode_back_to_back() {
        let mut gz = gzip_stored(b"first\n");
        gz.extend_from_slice(&gzip_stored(b"second\n"));
        gz.extend_from_slice(FIXED_FIXTURE);
        assert_eq!(
            gunzip(&gz).unwrap(),
            b"first\nsecond\nThe quick brown fox jumps over the lazy dog\n"
        );
    }

    #[test]
    fn rejects_corruption_with_diagnostics() {
        // Bad magic.
        let mut gz = gzip_stored(b"data");
        gz[0] = 0x1e;
        assert_eq!(
            gunzip(&gz),
            Err(InflateError::Corrupt("bad gzip magic bytes"))
        );
        // Truncation, at every prefix length: never a panic, always an error.
        let gz = gzip_stored(b"some payload");
        for cut in 0..gz.len() {
            assert!(gunzip(&gz[..cut]).is_err(), "prefix of {cut} bytes");
        }
        // Flipped payload byte -> checksum mismatch.
        let mut gz = gzip_stored(b"some payload");
        let payload_at = 10 + 5; // header + stored-block header
        gz[payload_at] ^= 0x01;
        assert!(matches!(
            gunzip(&gz),
            Err(InflateError::ChecksumMismatch { .. })
        ));
        // Broken stored-block length complement.
        let mut gz = gzip_stored(b"some payload");
        gz[13] ^= 0xff; // NLEN high byte
        assert_eq!(
            gunzip(&gz),
            Err(InflateError::Corrupt("stored block length check failed"))
        );
        // Lying ISIZE trailer.
        let mut gz = gzip_stored(b"some payload");
        let at = gz.len() - 1;
        gz[at] ^= 0xff;
        assert_eq!(
            gunzip(&gz),
            Err(InflateError::Corrupt(
                "ISIZE trailer disagrees with output length"
            ))
        );
        for e in [
            InflateError::TruncatedInput,
            InflateError::Corrupt("x"),
            InflateError::ChecksumMismatch {
                expected: 1,
                actual: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value from the CRC catalogues.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        // Streaming updates chain.
        let once = crc32(b"hello world");
        let chained = crc32_update(crc32_update(0, b"hello "), b"world");
        assert_eq!(once, chained);
    }
}
