//! Streaming dataset ingestion: edge-list loaders and the binary cache.
//!
//! This is the million-edge front door of the pipeline. The loaders
//! build the CSR directly from a text edge list (plain or gzip) in two
//! counting passes — degree histogram, then scatter — so peak transient
//! memory is one `usize` per node instead of the 24 B-per-edge tuple
//! buffer a collect-then-sort builder needs, and no global `O(m log m)`
//! sort ever runs. [`load_cached`] pairs the parse with the on-disk
//! binary CSR cache of [`cache`](self): the first load of a source
//! parses and writes `<source>.csrbin`; subsequent loads verify the
//! source stamp and map the arrays back in milliseconds.
//!
//! Text format (the `sdnd` CLI's native one): one `u v [w]` line per
//! edge, 0-based indices, optional weight column, `#` comments and
//! blank lines ignored. Files ending in `.gz` are decompressed in
//! memory first by the vendored [`gunzip`] decoder — no external
//! binaries or crates involved.
//!
//! ```
//! use sdnd_graph::dataset::{load_edge_list, LoadOptions};
//!
//! let dir = std::env::temp_dir().join("sdnd_dataset_doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("tiny.txt");
//! std::fs::write(&path, "# tiny\n0 1\n1 2 2.5\n").unwrap();
//! let g = load_edge_list(&path, &LoadOptions::default())?;
//! assert_eq!((g.n(), g.m()), (3, 2));
//! assert!(g.is_weighted()); // auto-detected third column
//! # Ok::<(), sdnd_graph::dataset::DatasetError>(())
//! ```

mod cache;
mod inflate;

pub(crate) use cache::content_hash;
pub use cache::{cache_path_for, read_cache, write_cache};
pub use inflate::{gunzip, gzip_stored, InflateError};

use crate::csr::{check_node_count, CsrScatter};
use crate::{Graph, GraphError};
use std::error::Error;
use std::fmt;
use std::io::BufRead;
use std::path::{Path, PathBuf};

/// Errors from the dataset layer. Parse problems carry the 1-based line
/// number of the offending input; cache problems distinguish *stale*
/// (rebuild silently) from *corrupt* (report loudly).
#[derive(Debug)]
pub enum DatasetError {
    /// Reading or writing a file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// An edge-list line did not parse.
    Parse {
        /// The file involved.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        what: String,
    },
    /// Weights were required ([`WeightMode::Require`]) but the file has
    /// no third column anywhere.
    MissingWeights {
        /// The file involved.
        path: PathBuf,
    },
    /// A `.gz` input failed to decompress.
    Gzip {
        /// The file involved.
        path: PathBuf,
        /// The decoder diagnostic.
        source: InflateError,
    },
    /// The parsed edges violated a graph invariant (self-loop,
    /// out-of-range endpoint, invalid weight, too many nodes).
    Graph(GraphError),
    /// A binary cache file is corrupt: checksum mismatch, truncation,
    /// or a structural invariant violation. Worth reporting — the
    /// source did not change, the cache itself is damaged.
    Cache {
        /// The cache file involved.
        path: PathBuf,
        /// What the validator found.
        what: String,
    },
    /// A binary cache file is stale: the source changed, or the format
    /// version moved on. The caller's cue to reparse and rewrite.
    Stale {
        /// The cache file involved.
        path: PathBuf,
        /// Why it no longer applies.
        why: String,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            DatasetError::Parse { path, line, what } => {
                write!(f, "{}: line {line}: {what}", path.display())
            }
            DatasetError::MissingWeights { path } => {
                write!(f, "{} has no third (weight) column", path.display())
            }
            DatasetError::Gzip { path, source } => write!(f, "{}: {source}", path.display()),
            DatasetError::Graph(e) => write!(f, "{e}"),
            DatasetError::Cache { path, what } => {
                write!(f, "{}: corrupt cache: {what}", path.display())
            }
            DatasetError::Stale { path, why } => {
                write!(f, "{}: stale cache: {why}", path.display())
            }
        }
    }
}

impl Error for DatasetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetError::Io { source, .. } => Some(source),
            DatasetError::Gzip { source, .. } => Some(source),
            DatasetError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for DatasetError {
    fn from(e: GraphError) -> Self {
        DatasetError::Graph(e)
    }
}

/// The identity of a source file — length and mtime — stored inside
/// its binary cache so edits invalidate the cache without hashing
/// megabytes on every load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceStamp {
    /// File length in bytes.
    pub len: u64,
    /// Modification time, seconds since the Unix epoch (0 when the
    /// filesystem reports a pre-epoch or missing mtime).
    pub mtime_secs: u64,
    /// Sub-second part of the mtime.
    pub mtime_nanos: u32,
}

impl SourceStamp {
    /// Reads the stamp of `path` from filesystem metadata.
    ///
    /// # Errors
    ///
    /// [`DatasetError::Io`] if the metadata is unreadable.
    pub fn of(path: &Path) -> Result<SourceStamp, DatasetError> {
        let meta = std::fs::metadata(path).map_err(|source| DatasetError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let (mtime_secs, mtime_nanos) = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map_or((0, 0), |d| (d.as_secs(), d.subsec_nanos()));
        Ok(SourceStamp {
            len: meta.len(),
            mtime_secs,
            mtime_nanos,
        })
    }
}

/// How the loader treats the optional third (weight) column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightMode {
    /// Weighted iff any line carries a third column; lines without one
    /// then default to weight 1. This is the CLI's default.
    #[default]
    Auto,
    /// The file must carry weights ([`DatasetError::MissingWeights`]
    /// otherwise).
    Require,
    /// Ignore any third column and build an unweighted graph (the
    /// caller will install its own metric).
    Ignore,
}

/// Options for [`load_edge_list`] and [`load_cached`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadOptions {
    /// Node count override. `None` means one past the largest index
    /// seen in the file.
    pub nodes: Option<usize>,
    /// Weight-column handling.
    pub weights: WeightMode,
}

/// What [`load_cached`] did to satisfy a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// A valid cache existed; no text was parsed.
    Hit,
    /// The text was parsed and a fresh cache written.
    Written,
    /// The text was parsed; no cache was written (not requested, or the
    /// write failed — loads never fail because a cache could not be
    /// saved).
    Bypassed,
}

/// One parsed data line: 1-based line number, endpoints, optional
/// weight column.
type ParsedEdge = (usize, usize, usize, Option<f64>);

/// Runs `f` over every data line of `reader`, parsing the `u v [w]`
/// format with the same tokenization and diagnostics for both passes.
fn scan_lines<R: BufRead>(
    mut reader: R,
    path: &Path,
    mut f: impl FnMut(ParsedEdge) -> Result<(), DatasetError>,
) -> Result<(), DatasetError> {
    let bad = |line: usize, what: &str| DatasetError::Parse {
        path: path.to_path_buf(),
        line,
        what: what.to_string(),
    };
    let mut buf = String::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        let read = reader
            .read_line(&mut buf)
            .map_err(|source| DatasetError::Io {
                path: path.to_path_buf(),
                source,
            })?;
        if read == 0 {
            return Ok(());
        }
        lineno += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let endpoint = |tok: Option<&str>| -> Result<usize, DatasetError> {
            tok.ok_or_else(|| bad(lineno, "expected `u v [w]`"))?
                .parse()
                .map_err(|_| bad(lineno, "bad node index"))
        };
        let u = endpoint(it.next())?;
        let v = endpoint(it.next())?;
        let w = it
            .next()
            .map(|t| {
                t.parse::<f64>()
                    .map_err(|_| bad(lineno, &format!("bad edge weight `{t}`")))
            })
            .transpose()?;
        f((lineno, u, v, w))?;
    }
}

/// Opens one parsing pass: a fresh buffered reader over the file, or a
/// cursor over the already-decompressed bytes of a `.gz` source.
fn open_pass<'a>(
    path: &Path,
    decompressed: Option<&'a [u8]>,
) -> Result<Box<dyn BufRead + 'a>, DatasetError> {
    match decompressed {
        Some(bytes) => Ok(Box::new(std::io::Cursor::new(bytes))),
        None => {
            let file = std::fs::File::open(path).map_err(|source| DatasetError::Io {
                path: path.to_path_buf(),
                source,
            })?;
            Ok(Box::new(std::io::BufReader::with_capacity(1 << 16, file)))
        }
    }
}

/// Loads a text edge list (plain, or gzip when the path ends in `.gz`)
/// into a [`Graph`] via the two-pass counting construction: pass one
/// validates every line and builds the degree histogram, pass two
/// scatters the edges straight into their CSR rows. The unsorted edge
/// list is never materialized; a plain file is streamed from disk
/// twice, a `.gz` file is decompressed into memory once and scanned
/// there twice.
///
/// Duplicate edges collapse to the minimum weight, exactly as
/// [`GraphBuilder::build`](crate::GraphBuilder::build) collapses them.
///
/// # Errors
///
/// [`DatasetError::Io`]/[`DatasetError::Gzip`] for unreadable input,
/// [`DatasetError::Parse`] (with a 1-based line number) for malformed
/// lines, [`DatasetError::MissingWeights`] under
/// [`WeightMode::Require`], and [`DatasetError::Graph`] for edges that
/// violate graph invariants — including
/// [`GraphError::TooManyNodes`] *before* any oversize allocation.
pub fn load_edge_list(path: &Path, opts: &LoadOptions) -> Result<Graph, DatasetError> {
    let decompressed: Option<Vec<u8>> = if path.extension().is_some_and(|e| e == "gz") {
        let raw = std::fs::read(path).map_err(|source| DatasetError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        Some(gunzip(&raw).map_err(|source| DatasetError::Gzip {
            path: path.to_path_buf(),
            source,
        })?)
    } else {
        None
    };
    if let Some(n) = opts.nodes {
        check_node_count(n)?;
    }

    // Pass 1: validate every line, learn the node count and whether any
    // weight column exists, and count directed slots per node.
    let mut deg: Vec<usize> = Vec::new();
    let mut any_weight = false;
    let mut max_index: Option<usize> = None;
    scan_lines(
        open_pass(path, decompressed.as_deref())?,
        path,
        |(line, u, v, w)| {
            let bound = opts.nodes.unwrap_or(u32::MAX as usize + 1);
            // Validate with a weight of 1 here; the *actual* weight is
            // checked separately so the diagnostic carries the line.
            crate::csr::validate_edge(bound, u, v, 1.0).map_err(|e| match e {
                GraphError::NodeOutOfRange { node, .. } if opts.nodes.is_none() => {
                    DatasetError::Graph(GraphError::TooManyNodes { n: node + 1 })
                }
                other => DatasetError::Graph(other),
            })?;
            if let Some(w) = w {
                if !(w.is_finite() && w >= 0.0) {
                    return Err(DatasetError::Parse {
                        path: path.to_path_buf(),
                        line,
                        what: format!("bad edge weight `{w}` (must be finite and non-negative)"),
                    });
                }
                any_weight = true;
            }
            let hi = u.max(v);
            if hi >= deg.len() {
                deg.resize(hi + 1, 0);
            }
            deg[u] += 1;
            deg[v] += 1;
            max_index = Some(max_index.map_or(hi, |m| m.max(hi)));
            Ok(())
        },
    )?;
    let n = opts.nodes.unwrap_or_else(|| max_index.map_or(0, |m| m + 1));
    deg.resize(n, 0);

    let weighted = match opts.weights {
        WeightMode::Auto => any_weight,
        WeightMode::Require => {
            if !any_weight {
                return Err(DatasetError::MissingWeights {
                    path: path.to_path_buf(),
                });
            }
            true
        }
        WeightMode::Ignore => false,
    };

    // Pass 2: scatter each edge into its two pre-sized CSR rows. A file
    // that changed between the passes overflows or underfills a row and
    // is reported, never silently corrupted.
    let mut scatter = CsrScatter::from_degrees(deg, weighted);
    scan_lines(
        open_pass(path, decompressed.as_deref())?,
        path,
        |(_, u, v, w)| {
            let w = if weighted { w.unwrap_or(1.0) } else { 1.0 };
            scatter.put(u, v, w)?;
            scatter.put(v, u, w)?;
            Ok(())
        },
    )?;
    Ok(scatter.finish((0..n as u64).collect())?)
}

/// Whether a cached graph satisfies what `opts` asks for; a mismatch
/// (e.g. the cache was written under a different weight mode) is
/// treated as a miss, not an error.
fn cache_satisfies(g: &Graph, opts: &LoadOptions) -> bool {
    let weights_ok = match opts.weights {
        WeightMode::Auto => true,
        WeightMode::Require => g.is_weighted(),
        WeightMode::Ignore => !g.is_weighted(),
    };
    weights_ok && opts.nodes.is_none_or(|n| n == g.n())
}

/// Loads `path` through the binary cache:
///
/// - a `.csrbin` path reads the cache file directly (no source stamp
///   to check);
/// - otherwise, a valid `<path>.csrbin` sibling whose stamp matches the
///   source short-circuits the parse ([`CacheStatus::Hit`]);
/// - otherwise the text is parsed, and — when `write` is set — the
///   cache is (re)written for next time ([`CacheStatus::Written`]).
///
/// A stale, corrupt, or incompatible cache falls back to the text
/// parse; a failed cache *write* degrades to [`CacheStatus::Bypassed`]
/// rather than failing the load.
///
/// # Errors
///
/// As [`load_edge_list`]; additionally [`DatasetError::Cache`] /
/// [`DatasetError::Stale`] when `path` itself is a `.csrbin` file that
/// cannot be used, and [`DatasetError::Graph`] with
/// [`GraphError::InvalidParameter`] when a directly-loaded cache
/// disagrees with `opts`.
pub fn load_cached(
    path: &Path,
    opts: &LoadOptions,
    write: bool,
) -> Result<(Graph, CacheStatus), DatasetError> {
    if path.extension().is_some_and(|e| e == "csrbin") {
        let g = read_cache(path, None)?;
        if !cache_satisfies(&g, opts) {
            return Err(DatasetError::Graph(GraphError::InvalidParameter {
                reason: format!(
                    "{}: cached graph (n = {}, {}) does not match the requested options",
                    path.display(),
                    g.n(),
                    if g.is_weighted() {
                        "weighted"
                    } else {
                        "unweighted"
                    },
                ),
            }));
        }
        return Ok((g, CacheStatus::Hit));
    }
    let stamp = SourceStamp::of(path)?;
    let cache_path = cache_path_for(path);
    if cache_path.exists() {
        if let Ok(g) = read_cache(&cache_path, Some(&stamp)) {
            if cache_satisfies(&g, opts) {
                return Ok((g, CacheStatus::Hit));
            }
        }
    }
    let g = load_edge_list(path, opts)?;
    let status = if write && write_cache(&cache_path, &g, Some(&stamp)).is_ok() {
        CacheStatus::Written
    } else {
        CacheStatus::Bypassed
    };
    Ok((g, status))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!("sdnd_dataset_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write(name: &str, contents: &[u8]) -> PathBuf {
        let p = dir().join(name);
        std::fs::write(&p, contents).unwrap();
        p
    }

    #[test]
    fn loads_plain_edge_lists_like_the_builder() {
        let p = write("plain.txt", b"# comment\n0 1\n1 2\n\n 2 3 \n3 1\n");
        let g = load_edge_list(&p, &LoadOptions::default()).unwrap();
        assert_eq!(
            g,
            Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 1)]).unwrap()
        );
        // --nodes extends the universe.
        let opts = LoadOptions {
            nodes: Some(10),
            ..Default::default()
        };
        assert_eq!(load_edge_list(&p, &opts).unwrap().n(), 10);
        // An empty file is the empty graph.
        let empty = write("empty.txt", b"# nothing\n");
        assert_eq!(
            load_edge_list(&empty, &LoadOptions::default()).unwrap().n(),
            0
        );
    }

    #[test]
    fn weight_modes_cover_auto_require_ignore() {
        let p = write("weights.txt", b"0 1 2.5\n1 2 0.5\n2 3\n");
        let auto = load_edge_list(&p, &LoadOptions::default()).unwrap();
        assert!(auto.is_weighted());
        assert_eq!(auto.edge_weight(NodeId::new(0), NodeId::new(1)), Some(2.5));
        assert_eq!(auto.edge_weight(NodeId::new(2), NodeId::new(3)), Some(1.0));
        let ignore = load_edge_list(
            &p,
            &LoadOptions {
                weights: WeightMode::Ignore,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!ignore.is_weighted());
        let plain = write("noweights.txt", b"0 1\n1 2\n");
        let err = load_edge_list(
            &plain,
            &LoadOptions {
                weights: WeightMode::Require,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("no third"), "{err}");
        // Duplicates collapse to the minimum weight, like the builder.
        let dup = write("dup.txt", b"0 1 5.0\n1 0 2.0\n0 1 7.5\n");
        let g = load_edge_list(&dup, &LoadOptions::default()).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.edge_weight(NodeId::new(0), NodeId::new(1)), Some(2.0));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases: [(&str, &[u8], &str); 5] = [
            ("bad_index.txt", b"0 1\n0 x\n", "line 2: bad node index"),
            ("short.txt", b"7\n", "line 1: expected `u v [w]`"),
            ("bad_w.txt", b"0 1 soup\n", "bad edge weight `soup`"),
            ("neg_w.txt", b"0 1 -2\n", "line 1: bad edge weight"),
            ("nan_w.txt", b"0 1 NaN\n", "line 1: bad edge weight"),
        ];
        for (name, contents, needle) in cases {
            let p = write(name, contents);
            let err = load_edge_list(&p, &LoadOptions::default()).unwrap_err();
            assert!(err.to_string().contains(needle), "{name}: {err}");
        }
        // Graph invariants surface as GraphError.
        let p = write("self_loop.txt", b"1 1\n");
        let err = load_edge_list(&p, &LoadOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            DatasetError::Graph(GraphError::SelfLoop { node: 1 })
        ));
        // --nodes bounds are enforced.
        let p = write("oob.txt", b"0 9\n");
        let opts = LoadOptions {
            nodes: Some(4),
            ..Default::default()
        };
        let err = load_edge_list(&p, &opts).unwrap_err();
        assert!(matches!(
            err,
            DatasetError::Graph(GraphError::NodeOutOfRange { node: 9, n: 4 })
        ));
        // Oversize indices come back as TooManyNodes, not a panic (and
        // not a 32 GB allocation).
        let huge = format!("0 {}\n", u32::MAX as u64 + 1);
        let p = write("huge.txt", huge.as_bytes());
        let err = load_edge_list(&p, &LoadOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            DatasetError::Graph(GraphError::TooManyNodes { .. })
        ));
        // A missing file is an Io error that names the path.
        let missing = dir().join("nope.txt");
        let err = load_edge_list(&missing, &LoadOptions::default()).unwrap_err();
        assert!(err.to_string().contains("nope.txt"), "{err}");
    }

    #[test]
    fn gzip_sources_load_identically() {
        let text = b"# gz\n0 1\n1 2 4.5\n2 3\n";
        let plain = write("gz_twin.txt", text);
        let gz = write("gz_twin.txt.gz", &gzip_stored(text));
        let a = load_edge_list(&plain, &LoadOptions::default()).unwrap();
        let b = load_edge_list(&gz, &LoadOptions::default()).unwrap();
        assert_eq!(a, b);
        // A corrupt .gz reports the decoder diagnostic, with the path.
        let mut broken = gzip_stored(text);
        broken[0] = 0;
        let p = write("broken.txt.gz", &broken);
        let err = load_edge_list(&p, &LoadOptions::default()).unwrap_err();
        assert!(
            matches!(err, DatasetError::Gzip { .. }) && err.to_string().contains("broken"),
            "{err}"
        );
    }

    #[test]
    fn cache_round_trips_weighted_and_unweighted() {
        for (name, contents) in [
            ("rt_plain.txt", &b"0 1\n1 2\n2 0\n"[..]),
            ("rt_weighted.txt", &b"0 1 0.5\n1 2 2\n2 0 1e3\n"[..]),
        ] {
            let p = write(name, contents);
            let original = load_edge_list(&p, &LoadOptions::default()).unwrap();
            let cp = cache_path_for(&p);
            let stamp = SourceStamp::of(&p).unwrap();
            write_cache(&cp, &original, Some(&stamp)).unwrap();
            let reread = read_cache(&cp, Some(&stamp)).unwrap();
            assert_eq!(reread, original, "{name}");
            // Custom ids survive too.
            let with_ids = original.clone().with_ids(vec![7, 5, 3]).unwrap();
            write_cache(&cp, &with_ids, None).unwrap();
            let reread = read_cache(&cp, None).unwrap();
            assert_eq!(reread, with_ids, "{name} with ids");
        }
    }

    #[test]
    fn cache_rejects_corruption_and_staleness() {
        let p = write("victim.txt", b"0 1\n1 2\n");
        let g = load_edge_list(&p, &LoadOptions::default()).unwrap();
        let stamp = SourceStamp::of(&p).unwrap();
        let cp = cache_path_for(&p);
        write_cache(&cp, &g, Some(&stamp)).unwrap();
        let pristine = std::fs::read(&cp).unwrap();

        // Stale: the stamp no longer matches.
        let newer = SourceStamp {
            len: stamp.len + 1,
            ..stamp.clone()
        };
        let err = read_cache(&cp, Some(&newer)).unwrap_err();
        assert!(matches!(err, DatasetError::Stale { .. }), "{err}");
        // Stale: future format version.
        let mut v2 = pristine.clone();
        v2[7] = 2;
        let vp = write("victim_v2.csrbin", &v2);
        let err = read_cache(&vp, None).unwrap_err();
        assert!(
            matches!(err, DatasetError::Stale { .. }) && err.to_string().contains("version"),
            "{err}"
        );
        // Corrupt: wrong magic entirely.
        let mp = write("victim_magic.csrbin", b"NOTACSR\x01rest");
        let err = read_cache(&mp, None).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        // Corrupt: every truncation fails cleanly, never panics.
        for cut in 0..pristine.len() {
            let tp = write("victim_cut.csrbin", &pristine[..cut]);
            let err = read_cache(&tp, None).unwrap_err();
            assert!(
                matches!(err, DatasetError::Cache { .. } | DatasetError::Stale { .. }),
                "cut {cut}: {err}"
            );
        }
        // Corrupt: a flipped payload byte trips the checksum.
        let mut flipped = pristine.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let fp = write("victim_flip.csrbin", &flipped);
        let err = read_cache(&fp, None).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn cache_validates_structure_not_just_checksums() {
        // A "cache" written with a correct checksum but broken graph
        // structure must still be rejected: forge one by re-encoding a
        // hand-corrupted graph through the public writer after patching
        // bytes *and* fixing the checksum.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let cp = dir().join("forged.csrbin");
        write_cache(&cp, &g, None).unwrap();
        let pristine = std::fs::read(&cp).unwrap();
        // adj section: offsets end at 8 + 4 + 8 + 8 + 4*8 = 60; slots=4.
        // Patch adj[0] (bytes 60..64) from 1 to 2: rows become unsorted /
        // asymmetric.
        let mut forged = pristine.clone();
        forged[60] = 2;
        let body_len = forged.len() - 4;
        let crc = super::inflate::crc32(&forged[..body_len]);
        forged[body_len..].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&cp, &forged).unwrap();
        let err = read_cache(&cp, None).unwrap_err();
        assert!(
            err.to_string().contains("symmetric") || err.to_string().contains("ascending"),
            "{err}"
        );
    }

    #[test]
    fn load_cached_hits_after_writing() {
        let p = write("cached.txt", b"0 1 2.0\n1 2 3.0\n");
        let cp = cache_path_for(&p);
        let _ = std::fs::remove_file(&cp);
        let opts = LoadOptions::default();
        let (g1, s1) = load_cached(&p, &opts, true).unwrap();
        assert_eq!(s1, CacheStatus::Written);
        assert!(cp.exists());
        let (g2, s2) = load_cached(&p, &opts, false).unwrap();
        assert_eq!(s2, CacheStatus::Hit);
        assert_eq!(g1, g2);
        // Loading the .csrbin directly also works.
        let (g3, s3) = load_cached(&cp, &opts, false).unwrap();
        assert_eq!(s3, CacheStatus::Hit);
        assert_eq!(g1, g3);
        // An incompatible option set falls back to the text parse...
        let ignore = LoadOptions {
            weights: WeightMode::Ignore,
            ..Default::default()
        };
        let (g4, s4) = load_cached(&p, &ignore, false).unwrap();
        assert!(!g4.is_weighted());
        assert_eq!(s4, CacheStatus::Bypassed);
        // ...but a direct .csrbin load with incompatible options errors.
        assert!(load_cached(&cp, &ignore, false).is_err());
        // Touching the source invalidates the cache (stamp mismatch).
        std::fs::write(&p, b"0 1 2.0\n1 2 3.0\n2 3 4.0\n").unwrap();
        let (g5, s5) = load_cached(&p, &opts, true).unwrap();
        assert_eq!(g5.m(), 3);
        assert_eq!(s5, CacheStatus::Written);
        // No-write mode on a missing cache parses and stays quiet.
        let _ = std::fs::remove_file(&cp);
        let (_, s6) = load_cached(&p, &opts, false).unwrap();
        assert_eq!(s6, CacheStatus::Bypassed);
        assert!(!cp.exists());
    }

    #[test]
    fn errors_display_cleanly() {
        let errs = [
            DatasetError::Io {
                path: "x".into(),
                source: std::io::Error::other("boom"),
            },
            DatasetError::Parse {
                path: "x".into(),
                line: 3,
                what: "w".into(),
            },
            DatasetError::MissingWeights { path: "x".into() },
            DatasetError::Gzip {
                path: "x".into(),
                source: InflateError::TruncatedInput,
            },
            DatasetError::Graph(GraphError::SelfLoop { node: 1 }),
            DatasetError::Cache {
                path: "x".into(),
                what: "w".into(),
            },
            DatasetError::Stale {
                path: "x".into(),
                why: "w".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
            let _ = e.source();
        }
    }
}
