//! Graph generators.
//!
//! Deterministic families (paths, cycles, grids, tori, hypercubes, trees)
//! and seeded random families (`G(n, p)`, random regular, random trees),
//! plus the *subdivided expander* barrier construction from Section 3 of
//! the paper. All random generators take an explicit `seed` so experiments
//! are reproducible.

mod basic;
mod expander;
mod random;
mod trees;

pub use basic::{complete, cycle, grid, hypercube, path, star, torus};
pub use expander::{barrier_graph, random_regular_connected, subdivide, BarrierGraph};
pub use random::{gnp, gnp_connected, random_regular};
pub use trees::{balanced_tree, caterpillar, random_tree};
