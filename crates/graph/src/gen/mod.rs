//! Graph generators.
//!
//! Deterministic families (paths, cycles, grids, tori, hypercubes, trees)
//! and seeded random families (`G(n, p)`, random regular, random trees),
//! plus the *subdivided expander* barrier construction from Section 3 of
//! the paper. All random generators take an explicit `seed` so experiments
//! are reproducible.
//!
//! Any generated graph can be turned into a weighted instance with
//! [`reweight`], which draws one weight per undirected edge from a
//! seeded [`WeightDist`]; the `*_weighted` convenience wrappers compose
//! the two steps for the families the weighted experiments run on.

mod basic;
mod expander;
mod random;
mod scale;
mod trees;

pub use basic::{complete, cycle, grid, grid_weighted, hypercube, path, star, torus};
pub use expander::{
    barrier_graph, random_regular_connected, random_regular_connected_weighted, subdivide,
    BarrierGraph,
};
pub use random::{gnp, gnp_connected, gnp_connected_weighted, random_regular};
pub use scale::{random_geometric, rmat};
pub use trees::{balanced_tree, caterpillar, random_tree};

use crate::{Graph, GraphError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded edge-weight distribution for [`reweight`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightDist {
    /// Every edge gets weight exactly 1. The result is *weighted* (unit
    /// weights are stored), which makes this the distribution of choice
    /// for testing that the weighted pipeline degenerates to the
    /// hop-count one.
    Unit,
    /// Uniform real weights in `[lo, hi]`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Uniform integer-valued weights in `{lo, lo+1, …, hi}` — the
    /// convention of the weighted-decomposition benchmarks (weights stay
    /// exactly representable, so all distance arithmetic is exact).
    UniformInt {
        /// Lower bound (inclusive).
        lo: u64,
        /// Upper bound (inclusive).
        hi: u64,
    },
}

impl WeightDist {
    fn validate(&self) -> Result<(), GraphError> {
        let bad = |reason: String| Err(GraphError::InvalidParameter { reason });
        match *self {
            WeightDist::Unit => Ok(()),
            WeightDist::Uniform { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite() && lo >= 0.0 && lo <= hi) {
                    bad(format!("uniform weight range [{lo}, {hi}] is invalid"))
                } else {
                    Ok(())
                }
            }
            WeightDist::UniformInt { lo, hi } => {
                if lo > hi {
                    bad(format!("integer weight range [{lo}, {hi}] is empty"))
                } else {
                    Ok(())
                }
            }
        }
    }

    fn sample(&self, rng: &mut SmallRng) -> f64 {
        match *self {
            WeightDist::Unit => 1.0,
            WeightDist::Uniform { lo, hi } => {
                if lo == hi {
                    lo
                } else {
                    rng.gen_range(lo..=hi)
                }
            }
            WeightDist::UniformInt { lo, hi } => rng.gen_range(lo..=hi) as f64,
        }
    }
}

/// Returns a weighted copy of `g`: one weight per undirected edge drawn
/// from `dist`, seeded by `seed`, assigned in the canonical
/// [`Graph::edges`] order (so the result is deterministic per seed).
/// Node identifiers are preserved.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for empty or non-finite
/// distribution ranges.
pub fn reweight(g: &Graph, dist: WeightDist, seed: u64) -> Result<Graph, GraphError> {
    dist.validate()?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = Graph::builder(g.n());
    b.weighted();
    for (u, v) in g.edges() {
        b.weighted_edge(u.index(), v.index(), dist.sample(&mut rng));
    }
    let ids: Vec<u64> = g.nodes().map(|v| g.id_of(v)).collect();
    b.build()?.with_ids(ids)
}

#[cfg(test)]
mod weight_tests {
    use super::*;

    #[test]
    fn reweight_is_deterministic_and_in_range() {
        let g = gnp_connected(40, 0.1, 7);
        let dist = WeightDist::UniformInt { lo: 1, hi: 8 };
        let a = reweight(&g, dist, 3).unwrap();
        let b = reweight(&g, dist, 3).unwrap();
        assert_eq!(a, b, "same seed, same weights");
        assert_ne!(a, reweight(&g, dist, 4).unwrap(), "seeds matter");
        assert!(a.is_weighted());
        assert_eq!(a.m(), g.m());
        for (_, _, w) in a.weighted_edges() {
            assert!((1.0..=8.0).contains(&w));
            assert_eq!(w.fract(), 0.0, "integer-valued");
        }
    }

    #[test]
    fn reweight_preserves_topology_and_ids() {
        let g = grid(4, 4)
            .with_ids((0..16).rev().map(|i| i as u64).collect())
            .unwrap();
        let w = reweight(&g, WeightDist::Uniform { lo: 0.5, hi: 2.0 }, 1).unwrap();
        assert_eq!(w.n(), g.n());
        assert_eq!(w.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
        for v in g.nodes() {
            assert_eq!(w.id_of(v), g.id_of(v));
        }
    }

    #[test]
    fn unit_distribution_marks_weighted() {
        let g = path(5);
        let u = reweight(&g, WeightDist::Unit, 0).unwrap();
        assert!(u.is_weighted());
        assert!(u.weighted_edges().all(|(_, _, w)| w == 1.0));
        assert_ne!(u, g, "unit-weighted is distinct from unweighted");
    }

    #[test]
    fn invalid_ranges_rejected() {
        let g = path(3);
        assert!(reweight(&g, WeightDist::Uniform { lo: 2.0, hi: 1.0 }, 0).is_err());
        assert!(reweight(&g, WeightDist::Uniform { lo: -1.0, hi: 1.0 }, 0).is_err());
        assert!(reweight(
            &g,
            WeightDist::Uniform {
                lo: 0.0,
                hi: f64::INFINITY
            },
            0
        )
        .is_err());
        assert!(reweight(&g, WeightDist::UniformInt { lo: 5, hi: 2 }, 0).is_err());
    }
}
