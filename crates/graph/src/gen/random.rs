//! Seeded random graph generators.

use crate::{Graph, GraphError};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, p)`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = Graph::builder(n);
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                b.edge(u, v);
            }
        }
        return b.build().expect("complete edges valid");
    }
    if p > 0.0 {
        // Geometric skipping over the n-choose-2 pair sequence.
        let ln_q = (1.0 - p).ln();
        let mut u = 1usize;
        let mut v: i64 = -1;
        while u < n {
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            let skip = (r.ln() / ln_q).floor() as i64 + 1;
            v += skip;
            while u < n && v >= u as i64 {
                v -= u as i64;
                u += 1;
            }
            if u < n {
                b.edge(u, v as usize);
            }
        }
    }
    b.build().expect("gnp edges are valid")
}

/// `G(n, p)` conditioned on connectivity: the sparse random remainder is
/// joined up by adding a uniformly random spanning-tree edge between
/// components (so the result is connected but statistically close to
/// `G(n, p)` for `p` above the connectivity threshold).
pub fn gnp_connected(n: usize, p: f64, seed: u64) -> Graph {
    let g = gnp(n, p, seed);
    let comps = crate::algo::connected_components(&g.full_view());
    if comps.count() <= 1 {
        return g;
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut b = Graph::builder(n);
    b.edges(g.edges().map(|(u, v)| (u.index(), v.index())));
    // Pick one representative per component and chain them in shuffled order.
    let mut reps: Vec<usize> = Vec::with_capacity(comps.count());
    let mut seen = vec![false; comps.count()];
    for v in g.nodes() {
        let c = comps.label(v).expect("full view labels every node");
        if !seen[c] {
            seen[c] = true;
            reps.push(v.index());
        }
    }
    reps.shuffle(&mut rng);
    for w in reps.windows(2) {
        b.edge(w[0], w[1]);
    }
    b.build().expect("augmented gnp edges are valid")
}

/// A connected `G(n, p)` with seeded edge weights: [`gnp_connected`]
/// followed by [`super::reweight`] (weights drawn with seed
/// `seed ^ 0xW`, so topology and weights are independently seeded).
///
/// # Errors
///
/// Propagates [`GraphError::InvalidParameter`] from an invalid weight
/// distribution.
pub fn gnp_connected_weighted(
    n: usize,
    p: f64,
    seed: u64,
    dist: super::WeightDist,
) -> Result<Graph, GraphError> {
    let g = gnp_connected(n, p, seed);
    super::reweight(&g, dist, seed ^ 0x57e1_6175)
}

/// A random `d`-regular graph via the configuration model, retrying until
/// the pairing is simple (no loops or multi-edges).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n * d` is odd, `d >= n`,
/// or no simple pairing is found within the retry budget (only plausible
/// for extreme parameters).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            reason: format!("n*d = {} is odd", n * d),
        });
    }
    if d >= n && n > 0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("degree {d} >= n {n}"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    'attempt: for _ in 0..400 {
        let mut stubs: Vec<usize> = (0..n * d).map(|s| s / d).collect();
        stubs.shuffle(&mut rng);
        let mut edges = Vec::with_capacity(n * d / 2);
        let mut adj = std::collections::HashSet::new();
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue 'attempt;
            }
            let key = (u.min(v), u.max(v));
            if !adj.insert(key) {
                continue 'attempt;
            }
            edges.push(key);
        }
        return Graph::from_edges(n, edges);
    }
    Err(GraphError::InvalidParameter {
        reason: format!("no simple {d}-regular pairing found for n={n}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn gnp_extremes() {
        let g0 = gnp(20, 0.0, 1);
        assert_eq!(g0.m(), 0);
        let g1 = gnp(10, 1.0, 1);
        assert_eq!(g1.m(), 45);
    }

    #[test]
    fn gnp_edge_count_is_plausible() {
        let n = 300;
        let p = 0.05;
        let g = gnp(n, p, 42);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let got = g.m() as f64;
        assert!(
            (got - expected).abs() < expected * 0.25,
            "got {got}, expected about {expected}"
        );
    }

    #[test]
    fn gnp_deterministic_per_seed() {
        assert_eq!(gnp(50, 0.1, 9), gnp(50, 0.1, 9));
        assert_ne!(gnp(50, 0.1, 9), gnp(50, 0.1, 10));
    }

    #[test]
    fn gnp_connected_connects() {
        let g = gnp_connected(80, 0.01, 3);
        assert!(algo::is_connected(&g.full_view()));
    }

    #[test]
    fn regular_degrees() {
        let g = random_regular(30, 4, 5).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.m(), 60);
    }

    #[test]
    fn regular_rejects_odd_total() {
        assert!(random_regular(5, 3, 1).is_err());
    }

    #[test]
    fn regular_rejects_degree_too_large() {
        assert!(random_regular(4, 4, 1).is_err());
    }

    #[test]
    fn regular_deterministic_per_seed() {
        let a = random_regular(24, 3, 11).unwrap();
        let b = random_regular(24, 3, 11).unwrap();
        assert_eq!(a, b);
    }
}
