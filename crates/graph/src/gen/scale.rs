//! Million-edge-capable generators, built on the streaming two-pass
//! CSR construction.
//!
//! The synthetic families elsewhere in [`gen`](crate::gen) top out
//! around 10^4 nodes — fine for correctness, useless for demonstrating
//! cache behavior. The two families here scale to 10^6+ edges while
//! staying offline-safe and seeded:
//!
//! - [`rmat`]: the recursive-matrix power-law family of Chakrabarti,
//!   Zhan and Faloutsos (SDM 2004) with the classic Graph500 quadrant
//!   probabilities (0.57, 0.19, 0.19, 0.05) — skewed degrees, low
//!   diameter, the adversarial case for node-order locality.
//! - [`random_geometric`]: `n` seeded points in the unit square joined
//!   within radius `r` — planar-ish structure with strong intrinsic
//!   locality, the showcase case for space-filling-curve relabeling.
//!
//! Both drive [`Graph::from_edge_stream`]: edges are generated twice
//! from the same seed (degree-counting pass, scatter pass) and never
//! collected into a sortable buffer, so peak transient memory is the
//! degree histogram, not 24 bytes per edge.

use crate::{Graph, GraphError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An RMAT graph with `2^scale` nodes and up to `2^scale * edge_factor`
/// edges (self-loops are dropped in-stream and duplicates collapse, so
/// the realized count is slightly lower — exactly the Graph500
/// convention). Deterministic per seed.
///
/// # Errors
///
/// [`GraphError::TooManyNodes`] when `scale > 32`, and
/// [`GraphError::InvalidParameter`] for a zero `edge_factor`.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> Result<Graph, GraphError> {
    if scale > 32 {
        return Err(GraphError::TooManyNodes {
            n: usize::MAX, // 2^scale does not fit; the exact count is moot
        });
    }
    if edge_factor == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "rmat edge_factor must be at least 1".into(),
        });
    }
    let n = 1usize << scale;
    let attempts = n.saturating_mul(edge_factor);
    Graph::from_edge_stream(n, || {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..attempts)
            .map(move |_| {
                let (mut u, mut v) = (0usize, 0usize);
                for _ in 0..scale {
                    // Quadrant probabilities (a, b, c, d) =
                    // (0.57, 0.19, 0.19, 0.05), cumulative.
                    let r: f64 = rng.gen();
                    let (bu, bv) = if r < 0.57 {
                        (0, 0)
                    } else if r < 0.76 {
                        (0, 1)
                    } else if r < 0.95 {
                        (1, 0)
                    } else {
                        (1, 1)
                    };
                    u = u << 1 | bu;
                    v = v << 1 | bv;
                }
                (u, v)
            })
            .filter(|&(u, v)| u != v)
    })
}

/// A random geometric graph: `n` seeded uniform points in the unit
/// square, with an edge between every pair at Euclidean distance at
/// most `radius`. Neighbor search uses a `radius`-sized grid of
/// buckets, so generation is `O(n + m)` for radii near the
/// connectivity threshold `~sqrt(ln n / n)`. Deterministic per seed;
/// connectivity is *not* guaranteed (the decomposition pipeline
/// handles components independently).
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] for a non-finite or non-positive
/// radius, and [`GraphError::TooManyNodes`] when `n` exceeds the `u32`
/// index space.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Result<Graph, GraphError> {
    if !(radius.is_finite() && radius > 0.0) {
        return Err(GraphError::InvalidParameter {
            reason: format!("geometric radius {radius} must be finite and positive"),
        });
    }
    crate::csr::check_node_count(n)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    // Bucket the square into radius-sized cells: all neighbors of a
    // point live in its 3x3 cell neighborhood.
    let side = (1.0 / radius).floor().max(1.0) as usize;
    let cell = move |x: f64, y: f64| -> (usize, usize) {
        (
            ((x * side as f64) as usize).min(side - 1),
            ((y * side as f64) as usize).min(side - 1),
        )
    };
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); side * side];
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = cell(x, y);
        grid[cx * side + cy].push(i as u32);
    }
    let r2 = radius * radius;
    let (pts_ref, grid_ref) = (&pts, &grid);
    Graph::from_edge_stream(n, || {
        (0..n).flat_map(move |i| {
            let (x, y) = pts_ref[i];
            let (cx, cy) = cell(x, y);
            let (x0, x1) = (cx.saturating_sub(1), (cx + 1).min(side - 1));
            let (y0, y1) = (cy.saturating_sub(1), (cy + 1).min(side - 1));
            (x0..=x1).flat_map(move |gx| {
                (y0..=y1).flat_map(move |gy| {
                    grid_ref[gx * side + gy].iter().filter_map(move |&j| {
                        let j = j as usize;
                        if j <= i {
                            return None;
                        }
                        let (px, py) = pts_ref[j];
                        let (dx, dy) = (px - x, py - y);
                        (dx * dx + dy * dy <= r2).then_some((i, j))
                    })
                })
            })
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic_and_skewed() {
        let a = rmat(10, 8, 7).unwrap();
        let b = rmat(10, 8, 7).unwrap();
        assert_eq!(a, b, "same seed, same graph");
        assert_ne!(a, rmat(10, 8, 8).unwrap(), "seeds matter");
        assert_eq!(a.n(), 1024);
        // Most duplicate collisions land on the hubs; the realized edge
        // count stays below the attempt count but the same order.
        assert!(a.m() <= 8 * 1024);
        assert!(a.m() > 4 * 1024, "m = {}", a.m());
        // Power-law skew: the biggest hub dwarfs the average degree.
        let mean = 2.0 * a.m() as f64 / a.n() as f64;
        assert!(
            a.max_degree() as f64 > 3.0 * mean,
            "max degree {} vs mean {mean:.1}",
            a.max_degree()
        );
    }

    #[test]
    fn rmat_rejects_bad_parameters() {
        assert!(matches!(
            rmat(33, 8, 1),
            Err(GraphError::TooManyNodes { .. })
        ));
        assert!(matches!(
            rmat(4, 0, 1),
            Err(GraphError::InvalidParameter { .. })
        ));
        // Degenerate single-node scale: every attempt is a self-loop.
        let g = rmat(0, 8, 1).unwrap();
        assert_eq!((g.n(), g.m()), (1, 0));
    }

    #[test]
    fn geometric_matches_brute_force() {
        let (n, radius, seed) = (200, 0.12, 3);
        let g = random_geometric(n, radius, seed).unwrap();
        assert_eq!(g, random_geometric(n, radius, seed).unwrap());
        // Reconstruct the point set (same seed, same draw order) and
        // compare against the O(n^2) definition.
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
        let mut expected = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                if dx * dx + dy * dy <= radius * radius {
                    expected.push((i, j));
                }
            }
        }
        let got: Vec<(usize, usize)> = g.edges().map(|(u, v)| (u.index(), v.index())).collect();
        let mut expected_sorted = expected.clone();
        expected_sorted.sort_unstable();
        assert_eq!(got, expected_sorted);
        assert!(!got.is_empty(), "r = 0.12 over 200 points yields edges");
    }

    #[test]
    fn geometric_rejects_bad_radius() {
        for r in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(random_geometric(10, r, 1).is_err(), "radius {r}");
        }
        // A huge radius degrades to the complete graph, not an error.
        let g = random_geometric(12, 5.0, 1).unwrap();
        assert_eq!(g.m(), 12 * 11 / 2);
    }
}
