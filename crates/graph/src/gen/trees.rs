//! Tree generators.

use crate::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A balanced `arity`-ary tree with the given number of `levels`
/// (a single root for `levels == 1`).
///
/// # Panics
///
/// Panics if `arity == 0` or `levels == 0`.
pub fn balanced_tree(arity: usize, levels: u32) -> Graph {
    assert!(arity > 0, "arity must be positive");
    assert!(levels > 0, "levels must be positive");
    let mut edges = Vec::new();
    let mut next = 1usize;
    let mut frontier = vec![0usize];
    for _ in 1..levels {
        let mut new_frontier = Vec::with_capacity(frontier.len() * arity);
        for &p in &frontier {
            for _ in 0..arity {
                edges.push((p, next));
                new_frontier.push(next);
                next += 1;
            }
        }
        frontier = new_frontier;
    }
    Graph::from_edges(next, edges).expect("tree edges are valid")
}

/// A caterpillar: a spine path of length `spine` with `legs` pendant
/// nodes attached to each spine node.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut b = Graph::builder(n);
    for i in 1..spine {
        b.edge(i - 1, i);
    }
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            b.edge(s, next);
            next += 1;
        }
    }
    b.build().expect("caterpillar edges are valid")
}

/// A uniformly random labelled tree on `n` nodes (random Prüfer sequence).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    if n == 2 {
        return Graph::from_edges(2, [(0, 1)]).expect("valid edge");
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();

    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    // Min-leaf extraction via a pointer sweep (classic O(n log n)-free trick).
    let mut ptr = 0usize;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &v in &prufer {
        edges.push((leaf, v));
        degree[v] -= 1;
        if degree[v] == 1 && v < ptr {
            leaf = v;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    edges.push((leaf, n - 1));
    Graph::from_edges(n, edges).expect("Prüfer decoding yields a valid tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn balanced_tree_counts() {
        let g = balanced_tree(2, 4); // 1 + 2 + 4 + 8 nodes
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        assert!(algo::is_connected(&g.full_view()));
    }

    #[test]
    fn single_level_tree_is_one_node() {
        let g = balanced_tree(3, 1);
        assert_eq!((g.n(), g.m()), (1, 0));
    }

    #[test]
    fn caterpillar_counts() {
        let g = caterpillar(5, 2);
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        assert!(algo::is_connected(&g.full_view()));
    }

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..5 {
            let g = random_tree(40, seed);
            assert_eq!(g.m(), 39, "seed {seed}");
            assert!(algo::is_connected(&g.full_view()), "seed {seed}");
        }
    }

    #[test]
    fn random_tree_small_cases() {
        assert_eq!(random_tree(0, 1).n(), 0);
        assert_eq!(random_tree(1, 1).m(), 0);
        assert_eq!(random_tree(2, 1).m(), 1);
        let g = random_tree(3, 9);
        assert_eq!(g.m(), 2);
        assert!(algo::is_connected(&g.full_view()));
    }

    #[test]
    fn random_tree_seed_determinism() {
        let a = random_tree(25, 7);
        let b = random_tree(25, 7);
        assert_eq!(a, b);
        let c = random_tree(25, 8);
        assert_ne!(a, c, "different seeds should (generically) differ");
    }
}
