//! Expanders, edge subdivision, and the Section 3 barrier construction.
//!
//! The paper closes with a lower-bound witness: take a constant-degree
//! expander `G_1` on `n' = O(eps n / log n)` nodes and subdivide every edge
//! into a path of length `ceil(log n / eps)`, yielding an `n`-node graph
//! `G_2` with conductance `Theta(eps / log n)` in which every subgraph of
//! polynomially many nodes has diameter `Omega(log^2 n / eps)`. On such
//! graphs Lemma 3.1's parameters are optimal. [`barrier_graph`] builds
//! `G_2` and records the bookkeeping needed by the barrier experiment.

use crate::{algo, Graph, GraphError, NodeId};

/// A connected random `d`-regular graph (an expander with high
/// probability), retrying seeds until connected.
///
/// # Errors
///
/// Propagates [`GraphError::InvalidParameter`] from the underlying
/// configuration-model generator, or reports failure to reach
/// connectivity within the retry budget.
pub fn random_regular_connected(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
    for attempt in 0..50 {
        let g = super::random_regular(n, d, seed.wrapping_add(attempt * 0x51ed_2701))?;
        if algo::is_connected(&g.full_view()) {
            return Ok(g);
        }
    }
    Err(GraphError::InvalidParameter {
        reason: format!("no connected {d}-regular graph found for n={n}"),
    })
}

/// A connected random `d`-regular expander with seeded edge weights:
/// [`random_regular_connected`] followed by [`super::reweight`] — the
/// instance family of the weighted-decomposition experiments.
///
/// # Errors
///
/// Propagates expander-construction failures and invalid weight
/// distributions.
pub fn random_regular_connected_weighted(
    n: usize,
    d: usize,
    seed: u64,
    dist: super::WeightDist,
) -> Result<Graph, GraphError> {
    let g = random_regular_connected(n, d, seed)?;
    super::reweight(&g, dist, seed ^ 0x57e1_6175)
}

/// Subdivides every edge of `g` into a path with `length` edges
/// (`length - 1` fresh internal nodes per original edge).
///
/// `length == 1` returns a copy of `g`. Original nodes keep their indices;
/// internal nodes are appended after index `g.n() - 1`.
///
/// # Panics
///
/// Panics if `length == 0`.
pub fn subdivide(g: &Graph, length: usize) -> Graph {
    assert!(length > 0, "subdivision length must be positive");
    if length == 1 {
        return g.clone();
    }
    let extra_per_edge = length - 1;
    let n = g.n() + g.m() * extra_per_edge;
    let mut b = Graph::builder(n);
    let mut next = g.n();
    for (u, v) in g.edges() {
        let mut prev = u.index();
        for _ in 0..extra_per_edge {
            b.edge(prev, next);
            prev = next;
            next += 1;
        }
        b.edge(prev, v.index());
    }
    b.build().expect("subdivision edges are valid")
}

/// The barrier construction of Section 3, with its provenance.
#[derive(Debug, Clone)]
pub struct BarrierGraph {
    graph: Graph,
    base_n: usize,
    degree: usize,
    path_length: usize,
}

impl BarrierGraph {
    /// The subdivided expander `G_2`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes `self`, returning `G_2`.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Number of nodes of the base expander `G_1`.
    pub fn base_n(&self) -> usize {
        self.base_n
    }

    /// Degree of the base expander.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Each `G_1` edge was subdivided into a path of this many edges
    /// (the paper's `log n / eps`).
    pub fn path_length(&self) -> usize {
        self.path_length
    }

    /// Whether a node of `G_2` is an original expander node (as opposed to
    /// a subdivision node).
    pub fn is_base_node(&self, v: NodeId) -> bool {
        v.index() < self.base_n
    }
}

/// Builds the Section 3 barrier graph targeting roughly `n_target` nodes.
///
/// Sets the subdivision length to `ceil(ln(n_target) / eps)`, solves for
/// the base expander size `n'` so that `n' + m' (len - 1) ≈ n_target`,
/// and subdivides a connected random `degree`-regular expander.
///
/// # Errors
///
/// Propagates expander-construction failures; also rejects parameter
/// combinations too small to leave at least 4 base nodes.
pub fn barrier_graph(
    n_target: usize,
    eps: f64,
    degree: usize,
    seed: u64,
) -> Result<BarrierGraph, GraphError> {
    assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0,1)");
    let len = ((n_target.max(2) as f64).ln() / eps).ceil().max(1.0) as usize;
    // n' base nodes contribute n' + (n' d / 2)(len - 1) total nodes.
    let per_base = 1.0 + degree as f64 / 2.0 * (len - 1) as f64;
    let mut base = ((n_target as f64) / per_base).round() as usize;
    if base * degree % 2 == 1 {
        base += 1; // keep the configuration model feasible
    }
    if base < 4 {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "barrier parameters (n={n_target}, eps={eps}) leave only {base} base nodes"
            ),
        });
    }
    let g1 = random_regular_connected(base, degree, seed)?;
    let g2 = subdivide(&g1, len);
    Ok(BarrierGraph {
        graph: g2,
        base_n: base,
        degree,
        path_length: len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn subdivide_path_lengths() {
        let g = super::super::cycle(4); // 4 nodes, 4 edges
        let s = subdivide(&g, 3);
        assert_eq!(s.n(), 4 + 4 * 2);
        assert_eq!(s.m(), 4 * 3);
        // Distances between original neighbors stretch to `length`.
        let d = algo::pairwise_distances(&s.full_view());
        assert_eq!(d[0][1], 3);
    }

    #[test]
    fn subdivide_length_one_is_identity() {
        let g = super::super::grid(3, 3);
        let s = subdivide(&g, 1);
        assert_eq!(s.n(), g.n());
        assert_eq!(s.m(), g.m());
    }

    #[test]
    fn subdivision_preserves_connectivity() {
        let g = random_regular_connected(20, 4, 3).unwrap();
        let s = subdivide(&g, 5);
        assert!(algo::is_connected(&s.full_view()));
        assert_eq!(s.n(), 20 + g.m() * 4);
    }

    #[test]
    fn connected_regular_is_connected() {
        let g = random_regular_connected(50, 3, 7).unwrap();
        assert!(algo::is_connected(&g.full_view()));
        assert!(g.nodes().all(|v| g.degree(v) == 3));
    }

    #[test]
    fn barrier_graph_size_and_diameter() {
        let bg = barrier_graph(800, 0.5, 4, 11).unwrap();
        let g = bg.graph();
        // Size lands within a factor-2 window of the target.
        assert!(g.n() >= 400 && g.n() <= 1600, "n = {}", g.n());
        assert!(algo::is_connected(&g.full_view()));
        // Subdivision stretches the base diameter by path_length.
        let diam = algo::diameter_two_sweep(&g.full_view()).unwrap() as usize;
        assert!(diam >= bg.path_length(), "diameter {diam} too small");
        assert!(bg.is_base_node(NodeId::new(0)));
        assert!(!bg.is_base_node(NodeId::new(bg.base_n())));
    }

    #[test]
    fn barrier_rejects_tiny() {
        assert!(barrier_graph(4, 0.5, 4, 1).is_err());
    }
}
