//! Deterministic graph families.

use crate::Graph;

/// The path `P_n` on nodes `0 — 1 — … — n-1`.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| (i - 1, i))).expect("path edges are valid")
}

/// The cycle `C_n` (requires `n >= 3`; smaller `n` degrade to a path).
pub fn cycle(n: usize) -> Graph {
    if n < 3 {
        return path(n);
    }
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).expect("cycle edges are valid")
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let edges = (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v)));
    Graph::from_edges(n, edges).expect("complete-graph edges are valid")
}

/// The star `K_{1,n-1}` with node 0 at the center.
pub fn star(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|v| (0, v))).expect("star edges are valid")
}

/// The `rows × cols` grid; node `(r, c)` has index `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = Graph::builder(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                b.edge(v, v + 1);
            }
            if r + 1 < rows {
                b.edge(v, v + cols);
            }
        }
    }
    b.build().expect("grid edges are valid")
}

/// The `rows × cols` grid with seeded edge weights: [`grid`] followed by
/// [`super::reweight`].
///
/// # Errors
///
/// Propagates [`crate::GraphError::InvalidParameter`] from an invalid
/// weight distribution.
pub fn grid_weighted(
    rows: usize,
    cols: usize,
    dist: super::WeightDist,
    seed: u64,
) -> Result<Graph, crate::GraphError> {
    super::reweight(&grid(rows, cols), dist, seed)
}

/// The `rows × cols` torus (grid with wraparound).
///
/// Requires `rows, cols >= 3` to stay simple; smaller dimensions degrade
/// to the corresponding grid.
pub fn torus(rows: usize, cols: usize) -> Graph {
    if rows < 3 || cols < 3 {
        return grid(rows, cols);
    }
    let mut b = Graph::builder(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            b.edge(v, r * cols + (c + 1) % cols);
            b.edge(v, ((r + 1) % rows) * cols + c);
        }
    }
    b.build().expect("torus edges are valid")
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let edges = (0..n).flat_map(move |v| {
        (0..d)
            .map(move |b| (v, v ^ (1 << b)))
            .filter(move |&(u, w)| u < w)
    });
    Graph::from_edges(n, edges).expect("hypercube edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn path_shape() {
        let g = path(6);
        assert_eq!((g.n(), g.m()), (6, 5));
        assert_eq!(algo::diameter_exact(&g.full_view()), Some(5));
    }

    #[test]
    fn tiny_paths() {
        assert_eq!(path(0).n(), 0);
        assert_eq!(path(1).m(), 0);
        assert_eq!(path(2).m(), 1);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(8);
        assert_eq!((g.n(), g.m()), (8, 8));
        assert!(g.nodes().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert_eq!(algo::diameter_exact(&g.full_view()), Some(1));
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.m(), 6);
        assert_eq!(g.degree(crate::NodeId::new(0)), 6);
        assert_eq!(algo::diameter_exact(&g.full_view()), Some(2));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!((g.n(), g.m()), (12, 3 * 3 + 2 * 4));
        assert!(algo::is_connected(&g.full_view()));
    }

    #[test]
    fn torus_is_regular() {
        let g = torus(4, 5);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.m(), 2 * 20);
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!((g.n(), g.m()), (16, 32));
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(algo::diameter_exact(&g.full_view()), Some(4));
    }
}
