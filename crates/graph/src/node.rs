//! Node identity.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node in a [`Graph`](crate::Graph).
///
/// `NodeId` is a dense index in `0..n`; it is distinct from the node's
/// unique `O(log n)`-bit *identifier* (see [`Graph::id_of`]), which
/// distributed algorithms use for symmetry breaking and which may be an
/// arbitrary permutation or injection.
///
/// [`Graph::id_of`]: crate::Graph::id_of
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = NodeId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(NodeId::from(42u32), v);
    }

    #[test]
    fn display_and_debug() {
        let v = NodeId::new(7);
        assert_eq!(format!("{v}"), "7");
        assert_eq!(format!("{v:?}"), "v7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(3) < NodeId::new(5));
    }
}
