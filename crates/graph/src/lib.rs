//! Graph substrate for the SDND project.
//!
//! This crate provides the undirected graphs on which the distributed
//! algorithms of the Chang–Ghaffari strong-diameter network
//! decomposition paper (PODC 2021) run, together with the graph machinery
//! those algorithms rely on:
//!
//! - [`Graph`]: a compact CSR (compressed sparse row) representation of a
//!   simple undirected graph with unique `O(log n)`-bit node identifiers
//!   and optional edge weights (unweighted graphs carry no weight array
//!   and stay on the hop-count fast paths).
//! - [`NodeSet`] and [`SubsetView`]: alive-node masks and induced views
//!   `G[S]`, the central object of the paper's iterative carving loops.
//! - [`algo`]: BFS (single- and multi-source), weighted shortest paths
//!   (Dijkstra plus a Bellman–Ford test oracle), the
//!   [`DistanceOracle`](algo::DistanceOracle) abstraction over the two
//!   metrics, connected components, eccentricity/diameter, power graphs
//!   `G^k`, induced subgraph extraction, and DFS numbering of trees.
//! - [`gen`]: deterministic and seeded-random graph generators — with
//!   seeded edge-weight distributions — including the subdivided-expander
//!   *barrier construction* from Section 3 of the paper.
//!
//! # Example
//!
//! ```
//! use sdnd_graph::{gen, algo};
//!
//! let g = gen::grid(8, 8);
//! let bfs = algo::bfs(&g.full_view(), [sdnd_graph::NodeId::new(0)]);
//! assert_eq!(bfs.eccentricity(), Some(14)); // corner-to-corner in an 8x8 grid
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
mod csr;
pub mod dataset;
mod deadline;
mod error;
pub mod gen;
mod node;
mod nodeset;
mod order;
mod view;

pub use csr::{EdgeIter, Graph, GraphBuilder};
pub use deadline::{Cancelled, Deadline};
pub use error::GraphError;
pub use node::NodeId;
pub use nodeset::NodeSet;
pub use order::{hilbert_key, morton_key, NodeOrder, Relabeling};
pub use view::{Adjacency, FullView, SubsetView};
