//! Cache-aware node orderings: space-filling-curve relabelings.
//!
//! On graphs that outgrow the last-level cache, the cost of a CSR
//! neighbor scan is dominated by where the neighbor *indices* land in
//! the per-node arrays (BFS distance slots, workspace stamps, engine
//! arenas) — not by the scan itself, which is sequential. A relabeling
//! that keeps topologically-close nodes numerically close makes those
//! scattered accesses hit cache lines that are already resident.
//!
//! This module provides the relabeling pass behind
//! [`Graph::relabeled`]: nodes are embedded into the plane by their hop
//! distances from two far-apart anchors (one pair per connected
//! component, found with the classic double-sweep heuristic), then
//! ordered along a [Hilbert] or [Morton] space-filling curve through
//! that embedding — the COST-style layout trick, adapted from
//! coordinate space to BFS-coordinate space so it applies to graphs
//! with no inherent geometry. A plain BFS visitation order is also
//! offered as the cheap baseline.
//!
//! The relabeled graph is *isomorphic* to the original: node `v` of the
//! original becomes node `perm(v)`, every edge follows, edge weights
//! follow their edges, and the `O(log n)`-bit symmetry-breaking
//! identifiers follow their nodes — so every decomposition algorithm
//! behaves identically up to the renaming, and results map back through
//! the returned [`Relabeling`].
//!
//! [Hilbert]: NodeOrder::Hilbert
//! [Morton]: NodeOrder::Morton

use crate::{algo, Graph, NodeId};
use std::fmt;
use std::str::FromStr;

/// A node ordering for [`Graph::relabeled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeOrder {
    /// Keep the labels as they are (the identity relabeling).
    Natural,
    /// BFS visitation order from the per-component anchors: cheap, and
    /// already a large improvement over an adversarial labeling.
    Bfs,
    /// Hilbert curve through the BFS-coordinate embedding. Best
    /// locality of the orders here (the curve never jumps).
    Hilbert,
    /// Morton (Z-order) curve through the BFS-coordinate embedding.
    /// Slightly weaker locality than Hilbert, cheaper key function.
    Morton,
}

impl NodeOrder {
    /// All orders, in documentation order.
    pub const ALL: [NodeOrder; 4] = [
        NodeOrder::Natural,
        NodeOrder::Bfs,
        NodeOrder::Hilbert,
        NodeOrder::Morton,
    ];
}

impl fmt::Display for NodeOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeOrder::Natural => "natural",
            NodeOrder::Bfs => "bfs",
            NodeOrder::Hilbert => "hilbert",
            NodeOrder::Morton => "morton",
        };
        f.write_str(s)
    }
}

impl FromStr for NodeOrder {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "natural" => Ok(NodeOrder::Natural),
            "bfs" => Ok(NodeOrder::Bfs),
            "hilbert" => Ok(NodeOrder::Hilbert),
            "morton" => Ok(NodeOrder::Morton),
            other => Err(format!(
                "unknown node order `{other}` (expected natural|bfs|hilbert|morton)"
            )),
        }
    }
}

/// The bijection produced by [`Graph::relabeled`], in both directions.
///
/// `new = perm(old)` is the relabeled index of original node `old`;
/// results computed on the relabeled graph map back through
/// [`old_of`](Self::old_of).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relabeling {
    /// `to_new[old] = new`.
    to_new: Vec<NodeId>,
    /// `to_old[new] = old`.
    to_old: Vec<NodeId>,
}

impl Relabeling {
    /// The identity relabeling on `n` nodes.
    pub fn identity(n: usize) -> Relabeling {
        let ids: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        Relabeling {
            to_new: ids.clone(),
            to_old: ids,
        }
    }

    /// Builds the bijection from the new-to-old order (a permutation of
    /// `0..n`; checked with a debug assertion).
    fn from_new_to_old(to_old: Vec<NodeId>) -> Relabeling {
        let mut to_new = vec![NodeId::new(0); to_old.len()];
        for (new, &old) in to_old.iter().enumerate() {
            to_new[old.index()] = NodeId::new(new);
        }
        debug_assert!({
            let mut seen = vec![false; to_old.len()];
            to_old
                .iter()
                .all(|v| !std::mem::replace(&mut seen[v.index()], true))
        });
        Relabeling { to_new, to_old }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.to_old.len()
    }

    /// The relabeled index of original node `old`.
    #[inline]
    pub fn new_of(&self, old: NodeId) -> NodeId {
        self.to_new[old.index()]
    }

    /// The original index of relabeled node `new`.
    #[inline]
    pub fn old_of(&self, new: NodeId) -> NodeId {
        self.to_old[new.index()]
    }

    /// The full old-to-new permutation (`perm[old] = new`).
    pub fn to_new(&self) -> &[NodeId] {
        &self.to_new
    }

    /// The full new-to-old permutation (`perm[new] = old`).
    pub fn to_old(&self) -> &[NodeId] {
        &self.to_old
    }

    /// Whether this is the identity (the [`NodeOrder::Natural`] result).
    pub fn is_identity(&self) -> bool {
        self.to_old.iter().enumerate().all(|(i, v)| v.index() == i)
    }

    /// Maps a set of relabeled nodes back to original indices (the
    /// common "map the decomposition home" step).
    pub fn cluster_to_old(&self, members: &[NodeId]) -> Vec<NodeId> {
        members.iter().map(|&v| self.old_of(v)).collect()
    }
}

impl Graph {
    /// Returns a copy of this graph with nodes renamed along `order`,
    /// plus the [`Relabeling`] that maps results back.
    ///
    /// The relabeled graph is isomorphic to `self`: edges, edge
    /// weights, and symmetry-breaking identifiers all follow their
    /// nodes, so algorithms produce the same outcomes up to the
    /// renaming. Cost: two BFS sweeps for the embedding plus an
    /// `O(n + m log Δ)` permuted CSR rebuild.
    ///
    /// ```
    /// use sdnd_graph::{gen, NodeOrder};
    ///
    /// let g = gen::grid(8, 8);
    /// let (h, map) = g.relabeled(NodeOrder::Hilbert);
    /// assert_eq!(h.m(), g.m());
    /// for (u, v) in h.edges() {
    ///     assert!(g.has_edge(map.old_of(u), map.old_of(v)));
    /// }
    /// ```
    pub fn relabeled(&self, order: NodeOrder) -> (Graph, Relabeling) {
        let n = self.n();
        let relabeling = match order {
            NodeOrder::Natural => Relabeling::identity(n),
            NodeOrder::Bfs => {
                if n == 0 {
                    Relabeling::identity(0)
                } else {
                    let view = self.full_view();
                    let first = algo::bfs(&view, component_representatives(self));
                    Relabeling::from_new_to_old(first.order().to_vec())
                }
            }
            NodeOrder::Hilbert => self.sfc_relabeling(hilbert_key),
            NodeOrder::Morton => self.sfc_relabeling(morton_key),
        };
        if relabeling.is_identity() {
            return (self.clone(), relabeling);
        }
        let permuted = self.permuted(&relabeling);
        (permuted, relabeling)
    }

    /// Sorts nodes by a space-filling-curve key over the BFS-coordinate
    /// embedding, ties broken by original index (determinism).
    fn sfc_relabeling(&self, key: fn(u32, u32) -> u64) -> Relabeling {
        let n = self.n();
        if n == 0 {
            return Relabeling::identity(0);
        }
        let (x, y) = self.bfs_coordinates();
        let mut order: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        order.sort_by_key(|v| (key(x[v.index()], y[v.index()]), *v));
        Relabeling::from_new_to_old(order)
    }

    /// Embeds every node into the plane as `(d(a, v), d(b, v))` where
    /// `a, b` are far-apart anchors of `v`'s connected component: `a` is
    /// the component's minimum-index node, `b` the node farthest from
    /// `a` (a double-sweep endpoint pair). All coordinates are finite —
    /// every component contributes its own anchors to the multi-source
    /// sweeps.
    fn bfs_coordinates(&self) -> (Vec<u32>, Vec<u32>) {
        let view = self.full_view();
        let first = algo::bfs(&view, component_representatives(self));
        // Farthest node per component, ties to the smaller index: the
        // second anchor of the double sweep.
        let comps = algo::connected_components(&view);
        let mut far: Vec<Option<NodeId>> = vec![None; comps.count()];
        for v in self.nodes() {
            let c = comps.label(v).expect("full view labels every node");
            let better = match far[c] {
                None => true,
                Some(b) => first.dist(v) > first.dist(b),
            };
            if better {
                far[c] = Some(v);
            }
        }
        let second = algo::bfs(&view, far.into_iter().flatten());
        let x: Vec<u32> = self.nodes().map(|v| first.dist(v)).collect();
        let y: Vec<u32> = self.nodes().map(|v| second.dist(v)).collect();
        (x, y)
    }

    /// Rebuilds the CSR under a relabeling: row `new` is row
    /// `old_of(new)` with neighbors mapped and re-sorted; weights follow
    /// their slots, identifiers follow their nodes.
    fn permuted(&self, map: &Relabeling) -> Graph {
        let n = self.n();
        let mut offsets = vec![0usize; n + 1];
        for new in 0..n {
            offsets[new + 1] = offsets[new] + self.degree(map.old_of(NodeId::new(new)));
        }
        let mut adj = vec![NodeId::new(0); self.directed_edges()];
        let ids: Vec<u64> = (0..n)
            .map(|new| self.id_of(map.old_of(NodeId::new(new))))
            .collect();
        let mut weights = self.weights().map(|_| vec![0.0f64; self.directed_edges()]);
        match &mut weights {
            None => {
                for new in 0..n {
                    let old = map.old_of(NodeId::new(new));
                    let row = &mut adj[offsets[new]..offsets[new + 1]];
                    for (slot, &nbr) in row.iter_mut().zip(self.neighbors(old)) {
                        *slot = map.new_of(nbr);
                    }
                    row.sort_unstable();
                }
            }
            Some(ws) => {
                let mut scratch: Vec<(NodeId, f64)> = Vec::new();
                for new in 0..n {
                    let old = map.old_of(NodeId::new(new));
                    scratch.clear();
                    scratch.extend(
                        self.out_slot_range(old)
                            .zip(self.neighbors(old))
                            .map(|(e, &nbr)| (map.new_of(nbr), self.weight(e))),
                    );
                    // Neighbor indices are unique within a row, so the
                    // key alone orders it.
                    scratch.sort_unstable_by_key(|&(v, _)| v);
                    for (i, &(v, w)) in scratch.iter().enumerate() {
                        adj[offsets[new] + i] = v;
                        ws[offsets[new] + i] = w;
                    }
                }
            }
        }
        Graph::from_parts(offsets, adj, ids, weights)
    }
}

/// One deterministic representative per connected component: the
/// minimum-index node (components are labeled in discovery order, which
/// visits nodes ascending).
fn component_representatives(g: &Graph) -> Vec<NodeId> {
    let comps = algo::connected_components(&g.full_view());
    let mut reps: Vec<NodeId> = Vec::with_capacity(comps.count());
    let mut seen = vec![false; comps.count()];
    for v in g.nodes() {
        let c = comps.label(v).expect("full view labels every node");
        if !std::mem::replace(&mut seen[c], true) {
            reps.push(v);
        }
    }
    reps
}

/// Hilbert-curve index of `(x, y)` on the order-32 curve (the full
/// `u32 x u32` grid): the standard iterative quadrant-rotation walk.
/// Points adjacent on the curve are adjacent in the plane, so sorting
/// by this key never jumps.
pub fn hilbert_key(x: u32, y: u32) -> u64 {
    let (mut x, mut y) = (x as u64, y as u64);
    let n: u64 = 1 << 32;
    let mut d: u64 = 0;
    let mut s: u64 = n / 2;
    while s > 0 {
        let rx = u64::from(x & s > 0);
        let ry = u64::from(y & s > 0);
        d = d.wrapping_add(s.wrapping_mul(s).wrapping_mul((3 * rx) ^ ry));
        // Rotate the quadrant so the sub-curve continues seamlessly.
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Morton (Z-order) index of `(x, y)`: bit-interleave, `x` in the even
/// positions and `y` in the odd ones.
pub fn morton_key(x: u32, y: u32) -> u64 {
    spread_bits(x) | (spread_bits(y) << 1)
}

/// Spreads the 32 bits of `v` into the even positions of a `u64`.
fn spread_bits(v: u32) -> u64 {
    let mut v = v as u64;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn morton_small_values() {
        assert_eq!(morton_key(0, 0), 0);
        assert_eq!(morton_key(1, 0), 1);
        assert_eq!(morton_key(0, 1), 2);
        assert_eq!(morton_key(1, 1), 3);
        assert_eq!(morton_key(2, 0), 4);
        assert_eq!(morton_key(u32::MAX, u32::MAX), u64::MAX);
    }

    #[test]
    fn sfc_keys_are_injective_on_a_box() {
        let mut hk = std::collections::HashSet::new();
        let mut mk = std::collections::HashSet::new();
        for x in 0..32u32 {
            for y in 0..32u32 {
                assert!(
                    hk.insert(hilbert_key(x, y)),
                    "hilbert collision at ({x},{y})"
                );
                assert!(mk.insert(morton_key(x, y)), "morton collision at ({x},{y})");
            }
        }
    }

    #[test]
    fn hilbert_consecutive_keys_are_plane_adjacent() {
        // Restricting to a box the curve fully covers: sort the box by
        // key; consecutive points must be Manhattan-distance … — the
        // order-32 curve restricted to a small box is not contiguous,
        // but the *full* first 64 points of the curve are. Walk them
        // via the inverse-free route: collect keys of a box large
        // enough to contain the first 64 curve points, sort, and check
        // the prefix is step-by-step adjacent.
        let mut pts: Vec<(u64, (i64, i64))> = Vec::new();
        for x in 0..64u32 {
            for y in 0..64u32 {
                pts.push((hilbert_key(x, y), (x as i64, y as i64)));
            }
        }
        pts.sort_unstable();
        for w in pts.windows(2).take(64) {
            let (ka, (xa, ya)) = w[0];
            let (kb, (xb, yb)) = w[1];
            assert_eq!(kb, ka + 1, "curve prefix must be contiguous");
            assert_eq!(
                (xa - xb).abs() + (ya - yb).abs(),
                1,
                "consecutive curve points must be plane-adjacent"
            );
        }
    }

    #[test]
    fn natural_relabeling_is_identity() {
        let g = gen::grid(4, 4);
        let (h, map) = g.relabeled(NodeOrder::Natural);
        assert!(map.is_identity());
        assert_eq!(h, g);
        assert_eq!(map.n(), 16);
    }

    #[test]
    fn relabeled_graph_is_isomorphic() {
        for order in [NodeOrder::Bfs, NodeOrder::Hilbert, NodeOrder::Morton] {
            let g = gen::gnp_connected(60, 0.08, 11)
                .with_ids((0..60u64).map(|i| 1000 - i).collect())
                .unwrap();
            let (h, map) = g.relabeled(order);
            assert_eq!(h.n(), g.n(), "{order}");
            assert_eq!(h.m(), g.m(), "{order}");
            // Every edge maps back to an original edge, bijectively.
            for (u, v) in h.edges() {
                assert!(g.has_edge(map.old_of(u), map.old_of(v)), "{order}");
            }
            // Identifiers follow their nodes.
            for v in h.nodes() {
                assert_eq!(h.id_of(v), g.id_of(map.old_of(v)), "{order}");
            }
            // The mapping is a bijection.
            for v in g.nodes() {
                assert_eq!(map.old_of(map.new_of(v)), v, "{order}");
            }
        }
    }

    #[test]
    fn relabeled_weights_follow_edges() {
        let g = gen::grid_weighted(5, 7, gen::WeightDist::UniformInt { lo: 1, hi: 9 }, 3).unwrap();
        for order in [NodeOrder::Bfs, NodeOrder::Hilbert, NodeOrder::Morton] {
            let (h, map) = g.relabeled(order);
            assert!(h.is_weighted(), "{order}");
            for (u, v, w) in h.weighted_edges() {
                assert_eq!(
                    g.edge_weight(map.old_of(u), map.old_of(v)),
                    Some(w),
                    "{order}"
                );
            }
        }
    }

    #[test]
    fn relabeling_handles_disconnected_and_empty_graphs() {
        let empty = Graph::empty(0);
        for order in NodeOrder::ALL {
            let (h, map) = empty.relabeled(order);
            assert_eq!(h.n(), 0, "{order}");
            assert_eq!(map.n(), 0, "{order}");
        }
        // Two components plus an isolated node.
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (4, 5), (5, 6)]).unwrap();
        for order in NodeOrder::ALL {
            let (h, map) = g.relabeled(order);
            assert_eq!(h.m(), g.m(), "{order}");
            for (u, v) in h.edges() {
                assert!(g.has_edge(map.old_of(u), map.old_of(v)), "{order}");
            }
        }
    }

    #[test]
    fn node_order_round_trips_through_strings() {
        for order in NodeOrder::ALL {
            assert_eq!(order.to_string().parse::<NodeOrder>().unwrap(), order);
        }
        assert!("zorder".parse::<NodeOrder>().is_err());
    }

    #[test]
    fn cluster_to_old_maps_members() {
        let g = gen::cycle(6);
        let (_, map) = g.relabeled(NodeOrder::Hilbert);
        let cluster: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let back = map.cluster_to_old(&cluster);
        assert_eq!(back.len(), 3);
        for (i, &v) in back.iter().enumerate() {
            assert_eq!(map.new_of(v).index(), i);
        }
    }
}
