//! Compressed sparse row graph representation.

use crate::{FullView, GraphError, NodeId, NodeSet, SubsetView};
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::sync::OnceLock;

/// A simple undirected graph in CSR form, with unique node identifiers
/// and optional edge weights.
///
/// Nodes are dense indices `0..n` (see [`NodeId`]). Each node additionally
/// carries a unique `O(log n)`-bit *identifier* used by the distributed
/// algorithms for symmetry breaking (leader election, the RG20 bit phases,
/// and so on). By default the identifier of node `v` is `v` itself, but an
/// arbitrary injection can be installed with [`Graph::with_ids`] — the
/// property-based tests use this to check the algorithms under adversarial
/// identifier assignments.
///
/// Edge weights are opt-in: [`GraphBuilder::weighted_edge`] attaches a
/// finite non-negative `f64` weight to an edge, [`Graph::weight`] reads
/// it back per directed-edge slot, and [`Graph::is_weighted`] tells the
/// distance layer whether to run Dijkstra or stay on the hop-count BFS
/// fast path. Unweighted graphs store no weight array at all.
///
/// # Example
///
/// ```
/// use sdnd_graph::Graph;
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.degree(sdnd_graph::NodeId::new(1)), 2);
/// # Ok::<(), sdnd_graph::GraphError>(())
/// ```
pub struct Graph {
    offsets: Vec<usize>,
    adj: Vec<NodeId>,
    ids: Vec<u64>,
    /// Optional edge weights, aligned with the directed-edge slots of
    /// `adj`: `weights[e]` is the weight of the undirected edge behind
    /// slot `e`, so the two orientations of an edge carry the same
    /// weight. `None` means the graph is unweighted (every edge counts
    /// as weight 1), which keeps the hop-count algorithms on their
    /// allocation-free fast path.
    weights: Option<Vec<f64>>,
    /// Lazily built reverse-edge table (see [`reverse_edges`]); derived
    /// from the topology, so it is excluded from equality and
    /// serialization and survives [`with_ids`].
    ///
    /// [`reverse_edges`]: Self::reverse_edges
    /// [`with_ids`]: Self::with_ids
    rev: OnceLock<Vec<usize>>,
}

impl Clone for Graph {
    fn clone(&self) -> Self {
        Graph {
            offsets: self.offsets.clone(),
            adj: self.adj.clone(),
            ids: self.ids.clone(),
            weights: self.weights.clone(),
            rev: self.rev.clone(),
        }
    }
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        // `rev` is a cache of a pure function of the topology: ignore it.
        // Weights (including weightedness itself) are part of identity: a
        // unit-weighted graph is *not* equal to its unweighted twin.
        self.offsets == other.offsets
            && self.adj == other.adj
            && self.ids == other.ids
            && self.weights == other.weights
    }
}

impl Eq for Graph {}

impl Serialize for Graph {
    fn to_value(&self) -> Value {
        // Matches the derive's struct-as-object representation, minus the
        // `rev` cache (derived data has no business in the artifact). The
        // `weights` field is emitted only for weighted graphs, so
        // unweighted artifacts keep their pre-weights shape.
        let mut fields = vec![
            ("offsets".to_string(), self.offsets.to_value()),
            ("adj".to_string(), self.adj.to_value()),
            ("ids".to_string(), self.ids.to_value()),
        ];
        if let Some(w) = &self.weights {
            fields.push(("weights".to_string(), w.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for Graph {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| DeError::msg(format!("Graph: missing field `{k}`")))
        };
        Ok(Graph {
            offsets: Vec::from_value(field("offsets")?)?,
            adj: Vec::from_value(field("adj")?)?,
            ids: Vec::from_value(field("ids")?)?,
            weights: v.get("weights").map(Vec::from_value).transpose()?,
            rev: OnceLock::new(),
        })
    }
}

impl Graph {
    /// A stable 64-bit hash of the graph's *content*: CSR structure,
    /// edge weights, and original node ids — exactly what a `.csrbin`
    /// cache file persists, hashed with the same slicing-by-16 CRC32
    /// machinery (widened to 64 bits by a second chained pass).
    ///
    /// Two graphs hash equal iff their canonical cache encodings are
    /// byte-identical, so serde/cache round trips preserve the hash
    /// while relabelings (which permute CSR rows and ids) change it.
    /// The serve layer keys its decomposition LRU on this value.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        crate::dataset::content_hash(self)
    }

    /// Starts building a graph with `n` nodes.
    pub fn builder(n: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: Vec::new(),
            weighted: false,
        }
    }

    /// Builds a graph with `n` nodes from an edge list.
    ///
    /// Duplicate edges are collapsed; `(u, v)` and `(v, u)` denote the same
    /// edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] or [`GraphError::NodeOutOfRange`]
    /// for invalid edges.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut b = Self::builder(n);
        for (u, v) in edges {
            b.edge(u, v);
        }
        b.build()
    }

    /// Builds a weighted graph with `n` nodes from a weighted edge list.
    ///
    /// Duplicate edges keep the minimum weight (see
    /// [`GraphBuilder::build`] for the full policy).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`], [`GraphError::NodeOutOfRange`],
    /// or [`GraphError::InvalidWeight`] for invalid edges.
    pub fn from_weighted_edges<I>(n: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut b = Self::builder(n);
        for (u, v, w) in edges {
            b.weighted_edge(u, v, w);
        }
        b.build()
    }

    /// Builds a graph with `n` nodes from a *replayable* edge stream in
    /// two counting passes — degree histogram, prefix offsets, scatter —
    /// without ever materializing the edge list.
    ///
    /// `stream` is invoked twice and must yield the identical edge
    /// sequence both times (re-seed a generator, re-read a file). This
    /// is the construction path for million-edge graphs: peak transient
    /// memory is the degree histogram (`8 B`/node) instead of the
    /// `24 B`/edge tuple buffer of [`GraphBuilder`], and there is no
    /// global `O(m log m)` sort — each adjacency row is sorted
    /// individually, which stays cache-local. Duplicate edges collapse
    /// exactly as [`GraphBuilder::build`] collapses them.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::TooManyNodes`], [`GraphError::SelfLoop`],
    /// or [`GraphError::NodeOutOfRange`] for invalid inputs, and
    /// [`GraphError::InvalidParameter`] if the two invocations of
    /// `stream` disagree.
    pub fn from_edge_stream<I, F>(n: usize, mut stream: F) -> Result<Graph, GraphError>
    where
        F: FnMut() -> I,
        I: IntoIterator<Item = (usize, usize)>,
    {
        Self::from_weighted_edge_stream_impl(n, false, || {
            let it = stream();
            it.into_iter().map(|(u, v)| (u, v, 1.0))
        })
    }

    /// Weighted twin of [`from_edge_stream`](Self::from_edge_stream):
    /// the same two-pass counting construction over `(u, v, w)` triples,
    /// with the duplicate-collapse-to-minimum-weight policy of
    /// [`GraphBuilder::build`].
    ///
    /// # Errors
    ///
    /// As [`from_edge_stream`](Self::from_edge_stream), plus
    /// [`GraphError::InvalidWeight`] for negative or non-finite weights.
    pub fn from_weighted_edge_stream<I, F>(n: usize, mut stream: F) -> Result<Graph, GraphError>
    where
        F: FnMut() -> I,
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        Self::from_weighted_edge_stream_impl(n, true, move || stream().into_iter())
    }

    fn from_weighted_edge_stream_impl<I, F>(
        n: usize,
        weighted: bool,
        mut stream: F,
    ) -> Result<Graph, GraphError>
    where
        F: FnMut() -> I,
        I: Iterator<Item = (usize, usize, f64)>,
    {
        check_node_count(n)?;
        // Pass 1: validate and count directed slots per node.
        let mut deg = vec![0usize; n];
        for (u, v, w) in stream() {
            validate_edge(n, u, v, w)?;
            deg[u] += 1;
            deg[v] += 1;
        }
        let mut scatter = CsrScatter::from_degrees(deg, weighted);
        // Pass 2: scatter. A stream that yields different edges the
        // second time would overflow its rows; `put` checks.
        for (u, v, w) in stream() {
            validate_edge(n, u, v, w)?;
            scatter.put(u, v, w)?;
            scatter.put(v, u, w)?;
        }
        scatter.finish((0..n as u64).collect())
    }

    /// Assembles a graph directly from CSR parts the caller guarantees
    /// valid: monotone `offsets`, rows sorted strictly ascending with
    /// in-range neighbors, symmetric adjacency, `weights` (if any) and
    /// `ids` aligned. Used by the relabeling pass and the binary cache
    /// loader, which both start from an already-valid graph.
    pub(crate) fn from_parts(
        offsets: Vec<usize>,
        adj: Vec<NodeId>,
        ids: Vec<u64>,
        weights: Option<Vec<f64>>,
    ) -> Graph {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets.len(), ids.len() + 1);
        debug_assert_eq!(*offsets.last().unwrap(), adj.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(weights.as_ref().is_none_or(|w| w.len() == adj.len()));
        Graph {
            offsets,
            adj,
            ids,
            weights,
            rev: OnceLock::new(),
        }
    }

    /// Creates the empty graph on `n` isolated nodes.
    pub fn empty(n: usize) -> Graph {
        Graph {
            offsets: vec![0; n + 1],
            adj: Vec::new(),
            ids: (0..n as u64).collect(),
            weights: None,
            rev: OnceLock::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Maximum degree over all nodes, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.n())
            .map(|v| self.degree(NodeId::new(v)))
            .max()
            .unwrap_or(0)
    }

    /// The neighbors of `v`, sorted by index.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Whether the edge `{u, v}` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Number of *directed* edge slots (`2 m`): every undirected edge
    /// `{u, v}` contributes the slots `u -> v` and `v -> u`.
    ///
    /// Directed edges are identified by their position in the CSR
    /// adjacency array, so the slots of `v`'s out-edges form the
    /// contiguous range [`out_slot_range`](Self::out_slot_range)`(v)`,
    /// ordered by neighbor index.
    #[inline]
    pub fn directed_edges(&self) -> usize {
        self.adj.len()
    }

    /// The contiguous range of directed-edge ids leaving `v`, aligned
    /// with [`neighbors`](Self::neighbors)`(v)`: the edge to the `k`-th
    /// neighbor has id `out_slot_range(v).start + k`.
    #[inline]
    pub fn out_slot_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.offsets[v.index()]..self.offsets[v.index() + 1]
    }

    /// The rank of `to` within `from`'s sorted neighbor list, or `None`
    /// if the edge is absent. `O(log deg(from))`.
    #[inline]
    pub fn neighbor_rank(&self, from: NodeId, to: NodeId) -> Option<usize> {
        self.neighbors(from).binary_search(&to).ok()
    }

    /// The directed-edge id of `from -> to`, or `None` if absent.
    #[inline]
    pub fn directed_edge(&self, from: NodeId, to: NodeId) -> Option<usize> {
        self.neighbor_rank(from, to)
            .map(|rank| self.offsets[from.index()] + rank)
    }

    /// The head (target) of directed edge `e`: for `e = directed_edge(u,
    /// v)`, returns `v`.
    #[inline]
    pub fn edge_head(&self, e: usize) -> NodeId {
        self.adj[e]
    }

    /// Whether this graph carries edge weights.
    ///
    /// Unweighted graphs behave as if every edge had weight 1 (see
    /// [`weight`](Self::weight)), but the distance algorithms use the
    /// flag to stay on the integer hop-count fast path.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// The weight of directed edge slot `e` (1 for unweighted graphs).
    ///
    /// Both orientations of an undirected edge carry the same weight.
    #[inline]
    pub fn weight(&self, e: usize) -> f64 {
        match &self.weights {
            Some(w) => w[e],
            None => 1.0,
        }
    }

    /// The weight array aligned with the directed-edge slots, or `None`
    /// for unweighted graphs.
    #[inline]
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// The weight of the edge `{u, v}`, or `None` if the edge is absent.
    /// Returns 1 for present edges of unweighted graphs.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.directed_edge(u, v).map(|e| self.weight(e))
    }

    /// The largest edge weight (1 for unweighted or edgeless graphs).
    pub fn max_edge_weight(&self) -> f64 {
        match &self.weights {
            Some(w) if !w.is_empty() => w.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            _ => 1.0,
        }
    }

    /// The reverse-edge table: `rev[e]` is the directed-edge id of the
    /// opposite orientation, so `rev[directed_edge(u, v)] ==
    /// directed_edge(v, u)`.
    ///
    /// Built lazily in `O(n + m)` on first use and cached on the graph
    /// for its whole lifetime, so every engine construction and session
    /// on the same `Graph` shares one table.
    pub fn reverse_edges(&self) -> &[usize] {
        self.rev.get_or_init(|| {
            let mut rev = vec![0usize; self.adj.len()];
            let n = self.n();
            let mut cursor: Vec<usize> = self.offsets[..n].to_vec();
            for u in 0..n {
                let row = self.offsets[u]..self.offsets[u + 1];
                for (rev_e, &v) in rev[row.clone()].iter_mut().zip(&self.adj[row]) {
                    // Scanning tails in ascending order visits each head's
                    // sorted in-row exactly in order, so `v`'s next
                    // unmatched row position is the slot of `v -> u`.
                    *rev_e = cursor[v.index()];
                    cursor[v.index()] += 1;
                }
            }
            rev
        })
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.n()).map(NodeId::new)
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            g: self,
            u: 0,
            pos: 0,
        }
    }

    /// Iterates over each undirected edge once with its weight, as
    /// `(u, v, w)` with `u < v` (weight 1 on unweighted graphs).
    pub fn weighted_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.nodes().flat_map(move |u| {
            self.out_slot_range(u)
                .zip(self.neighbors(u).iter().copied())
                .filter(move |&(_, v)| u < v)
                .map(move |(e, v)| (u, v, self.weight(e)))
        })
    }

    /// The unique identifier of node `v`.
    #[inline]
    pub fn id_of(&self, v: NodeId) -> u64 {
        self.ids[v.index()]
    }

    /// The node whose identifier is minimum (the canonical leader).
    ///
    /// Returns `None` for the empty graph.
    pub fn min_id_node(&self) -> Option<NodeId> {
        self.nodes().min_by_key(|&v| self.id_of(v))
    }

    /// Number of bits needed to write every identifier (at least 1).
    pub fn id_bits(&self) -> u32 {
        let max = self.ids.iter().copied().max().unwrap_or(0);
        (64 - max.leading_zeros()).max(1)
    }

    /// Replaces the identifier assignment.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::IdLengthMismatch`] if `ids.len() != n`, and
    /// [`GraphError::DuplicateId`] if the assignment is not injective.
    pub fn with_ids(mut self, ids: Vec<u64>) -> Result<Graph, GraphError> {
        if ids.len() != self.n() {
            return Err(GraphError::IdLengthMismatch {
                got: ids.len(),
                expected: self.n(),
            });
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
            return Err(GraphError::DuplicateId { id: w[0] });
        }
        self.ids = ids;
        Ok(self)
    }

    /// A view of the whole graph (every node alive).
    pub fn full_view(&self) -> FullView<'_> {
        FullView::new(self)
    }

    /// The induced view `G[S]` of the alive set `S`.
    ///
    /// # Panics
    ///
    /// Panics if the universe of `alive` differs from `n`.
    pub fn view<'a>(&'a self, alive: &'a NodeSet) -> SubsetView<'a> {
        SubsetView::new(self, alive)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n(), self.m())
    }
}

/// Iterator over the undirected edges of a [`Graph`], produced by
/// [`Graph::edges`].
pub struct EdgeIter<'a> {
    g: &'a Graph,
    u: usize,
    pos: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        while self.u < self.g.n() {
            let end = self.g.offsets[self.u + 1];
            while self.pos < end {
                let v = self.g.adj[self.pos];
                self.pos += 1;
                if self.u < v.index() {
                    return Some((NodeId::new(self.u), v));
                }
            }
            self.u += 1;
        }
        None
    }
}

/// Incremental builder for [`Graph`], following the builder pattern.
///
/// ```
/// use sdnd_graph::Graph;
///
/// let mut b = Graph::builder(4);
/// b.edge(0, 1).edge(1, 2).edge(2, 3);
/// let g = b.build()?;
/// assert_eq!(g.m(), 3);
/// # Ok::<(), sdnd_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(usize, usize, f64)>,
    weighted: bool,
}

impl GraphBuilder {
    /// Adds the undirected edge `{u, v}` with weight 1. Duplicates are
    /// collapsed at [`build`](Self::build) time.
    pub fn edge(&mut self, u: usize, v: usize) -> &mut Self {
        self.edges.push((u, v, 1.0));
        self
    }

    /// Adds every edge in the iterator.
    pub fn edges<I: IntoIterator<Item = (usize, usize)>>(&mut self, it: I) -> &mut Self {
        self.edges.extend(it.into_iter().map(|(u, v)| (u, v, 1.0)));
        self
    }

    /// Adds the undirected edge `{u, v}` with weight `w`, marking the
    /// graph as weighted. Plain [`edge`](Self::edge) calls on a weighted
    /// builder contribute weight 1.
    pub fn weighted_edge(&mut self, u: usize, v: usize, w: f64) -> &mut Self {
        self.edges.push((u, v, w));
        self.weighted = true;
        self
    }

    /// Adds every weighted edge in the iterator.
    pub fn weighted_edges<I: IntoIterator<Item = (usize, usize, f64)>>(
        &mut self,
        it: I,
    ) -> &mut Self {
        for (u, v, w) in it {
            self.weighted_edge(u, v, w);
        }
        self
    }

    /// Marks the graph as weighted even if no [`weighted_edge`] call is
    /// made — needed when extracting a (possibly edgeless) weighted
    /// subgraph that must keep its metric.
    ///
    /// [`weighted_edge`]: Self::weighted_edge
    pub fn weighted(&mut self) -> &mut Self {
        self.weighted = true;
        self
    }

    /// Finalizes the graph.
    ///
    /// Duplicate edges (including `(u, v)` vs `(v, u)`) collapse into
    /// one; when any copies carry weights, the collapsed edge keeps the
    /// **minimum** weight — the only choice under which weighted
    /// distances never increase when a parallel edge is added, matching
    /// the shortest-path semantics downstream.
    ///
    /// The construction is a counting sort: degree histogram → prefix
    /// offsets → scatter → per-row sort and dedup. No global
    /// `O(m log m)` sort of the edge list happens; each adjacency row
    /// is sorted on its own, which is both asymptotically cheaper
    /// (`O(m log Δ)`) and cache-local once the graph outgrows L3.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] or [`GraphError::NodeOutOfRange`]
    /// for invalid edges, [`GraphError::InvalidWeight`] for negative
    /// or non-finite weights, and [`GraphError::TooManyNodes`] when `n`
    /// exceeds the `u32` index space.
    pub fn build(&self) -> Result<Graph, GraphError> {
        let n = self.n;
        check_node_count(n)?;
        let mut deg = vec![0usize; n];
        for &(u, v, w) in &self.edges {
            validate_edge(n, u, v, w)?;
            deg[u] += 1;
            deg[v] += 1;
        }
        let mut scatter = CsrScatter::from_degrees(deg, self.weighted);
        for &(u, v, w) in &self.edges {
            scatter
                .put(u, v, w)
                .and_then(|()| scatter.put(v, u, w))
                .expect("degrees counted from the same edge list");
        }
        scatter.finish((0..n as u64).collect())
    }
}

/// Rejects node counts whose indices would not fit [`NodeId`]'s `u32`,
/// *before* any `O(n)` allocation happens.
pub(crate) fn check_node_count(n: usize) -> Result<(), GraphError> {
    if n as u64 > u32::MAX as u64 + 1 {
        return Err(GraphError::TooManyNodes { n });
    }
    Ok(())
}

/// Validates one edge against the builder invariants (simple graph,
/// in-range endpoints, finite non-negative weight).
pub(crate) fn validate_edge(n: usize, u: usize, v: usize, w: f64) -> Result<(), GraphError> {
    if u == v {
        return Err(GraphError::SelfLoop { node: u });
    }
    if u >= n {
        return Err(GraphError::NodeOutOfRange { node: u, n });
    }
    if v >= n {
        return Err(GraphError::NodeOutOfRange { node: v, n });
    }
    if !(w.is_finite() && w >= 0.0) {
        return Err(GraphError::InvalidWeight { u, v, weight: w });
    }
    Ok(())
}

/// Shared scatter phase of the counting-sort CSR construction: rows are
/// pre-sized from a degree histogram (duplicates included), directed
/// slots land via a per-row cursor, and [`finish`](Self::finish) sorts
/// each row individually, collapsing duplicates to the minimum weight.
///
/// Used by [`GraphBuilder::build`], [`Graph::from_edge_stream`], and the
/// dataset loaders; all of them therefore share one duplicate-collapse
/// policy by construction.
pub(crate) struct CsrScatter {
    /// Prefix offsets over the *pre-dedup* degree histogram.
    offsets: Vec<usize>,
    /// Next free slot per row.
    cursor: Vec<usize>,
    adj: Vec<NodeId>,
    weights: Option<Vec<f64>>,
}

impl CsrScatter {
    /// Sizes the rows from a directed-slot histogram (`deg[u]` counts
    /// every occurrence of `u` as an endpoint, duplicates included).
    pub(crate) fn from_degrees(deg: Vec<usize>, weighted: bool) -> CsrScatter {
        let n = deg.len();
        let mut offsets = vec![0usize; n + 1];
        for (u, &d) in deg.iter().enumerate() {
            offsets[u + 1] = offsets[u] + d;
        }
        let slots = offsets[n];
        let cursor = offsets[..n].to_vec();
        CsrScatter {
            offsets,
            cursor,
            adj: vec![NodeId::new(0); slots],
            weights: weighted.then(|| vec![0.0f64; slots]),
        }
    }

    /// Places the directed slot `u -> v` (one orientation; callers put
    /// both). Errors if `u`'s row is already full — the counting pass
    /// and the scatter pass disagreed.
    #[inline]
    pub(crate) fn put(&mut self, u: usize, v: usize, w: f64) -> Result<(), GraphError> {
        let slot = self.cursor[u];
        if slot >= self.offsets[u + 1] {
            return Err(GraphError::InvalidParameter {
                reason: format!("edge stream changed between counting passes (row {u} overflowed)"),
            });
        }
        self.cursor[u] = slot + 1;
        self.adj[slot] = NodeId::new(v);
        if let Some(ws) = &mut self.weights {
            ws[slot] = w;
        }
        Ok(())
    }

    /// Sorts each row, collapses duplicate neighbors (keeping the
    /// minimum weight — see [`GraphBuilder::build`]), compacts in place,
    /// and assembles the [`Graph`].
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] if any row was underfilled (the
    /// scatter pass yielded fewer edges than the counting pass).
    pub(crate) fn finish(self, ids: Vec<u64>) -> Result<Graph, GraphError> {
        let CsrScatter {
            offsets,
            cursor,
            mut adj,
            mut weights,
        } = self;
        let n = offsets.len() - 1;
        if let Some(u) = (0..n).find(|&u| cursor[u] != offsets[u + 1]) {
            return Err(GraphError::InvalidParameter {
                reason: format!(
                    "edge stream changed between counting passes (row {u} underfilled)"
                ),
            });
        }
        let mut new_offsets = vec![0usize; n + 1];
        let mut write = 0usize;
        match &mut weights {
            None => {
                for u in 0..n {
                    let (start, end) = (offsets[u], offsets[u + 1]);
                    adj[start..end].sort_unstable();
                    // Compaction never overtakes the read cursor: earlier
                    // rows only shrink, so `write <= start` throughout.
                    let mut prev = None;
                    for i in start..end {
                        let v = adj[i];
                        if prev != Some(v) {
                            adj[write] = v;
                            write += 1;
                            prev = Some(v);
                        }
                    }
                    new_offsets[u + 1] = write;
                }
            }
            Some(ws) => {
                // Weights are validated finite, so `total_cmp` agrees
                // with the numeric order; sorting puts the minimum
                // weight first and dedup keeps the first of each run.
                let mut row: Vec<(NodeId, f64)> = Vec::new();
                for u in 0..n {
                    let (start, end) = (offsets[u], offsets[u + 1]);
                    row.clear();
                    row.extend(
                        adj[start..end]
                            .iter()
                            .copied()
                            .zip(ws[start..end].iter().copied()),
                    );
                    row.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
                    row.dedup_by(|a, b| a.0 == b.0);
                    for &(v, w) in &row {
                        adj[write] = v;
                        ws[write] = w;
                        write += 1;
                    }
                    new_offsets[u + 1] = write;
                }
                ws.truncate(write);
            }
        }
        adj.truncate(write);
        Ok(Graph {
            offsets: new_offsets,
            adj,
            ids,
            weights,
            rev: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_sorts_neighbors() {
        let g = Graph::from_edges(5, [(3, 1), (0, 3), (3, 4), (1, 0)]).unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
        let nbrs: Vec<usize> = g
            .neighbors(NodeId::new(3))
            .iter()
            .map(|v| v.index())
            .collect();
        assert_eq!(nbrs, vec![0, 1, 4]);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(NodeId::new(0)), 1);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(3, [(1, 1)]),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(3, [(0, 5)]),
            Err(GraphError::NodeOutOfRange { node: 5, n: 3 })
        );
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = Graph::from_edges(4, [(0, 2), (2, 3)]).unwrap();
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(g.has_edge(NodeId::new(2), NodeId::new(0)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let edges: Vec<(usize, usize)> = g.edges().map(|(u, v)| (u.index(), v.index())).collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn default_ids_are_identity() {
        let g = Graph::empty(4);
        assert_eq!(g.id_of(NodeId::new(2)), 2);
        assert_eq!(g.min_id_node(), Some(NodeId::new(0)));
    }

    #[test]
    fn custom_ids() {
        let g = Graph::empty(3).with_ids(vec![30, 10, 20]).unwrap();
        assert_eq!(g.min_id_node(), Some(NodeId::new(1)));
        assert_eq!(g.id_bits(), 5);
    }

    #[test]
    fn bad_ids_rejected() {
        assert!(matches!(
            Graph::empty(3).with_ids(vec![1, 1, 2]),
            Err(GraphError::DuplicateId { id: 1 })
        ));
        assert!(matches!(
            Graph::empty(3).with_ids(vec![1, 2]),
            Err(GraphError::IdLengthMismatch {
                got: 2,
                expected: 3
            })
        ));
    }

    #[test]
    fn directed_edge_ids_align_with_csr() {
        let g = Graph::from_edges(5, [(3, 1), (0, 3), (3, 4), (1, 0)]).unwrap();
        assert_eq!(g.directed_edges(), 8);
        // Node 3's neighbors are [0, 1, 4]; slots are contiguous, in
        // neighbor order.
        let r = g.out_slot_range(NodeId::new(3));
        assert_eq!(r.len(), 3);
        assert_eq!(g.neighbor_rank(NodeId::new(3), NodeId::new(4)), Some(2));
        let e = g.directed_edge(NodeId::new(3), NodeId::new(4)).unwrap();
        assert_eq!(e, r.start + 2);
        assert_eq!(g.edge_head(e), NodeId::new(4));
        assert_eq!(g.neighbor_rank(NodeId::new(3), NodeId::new(2)), None);
        assert_eq!(g.directed_edge(NodeId::new(0), NodeId::new(4)), None);
    }

    #[test]
    fn reverse_edges_invert() {
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 5), (2, 5)]).unwrap();
        let rev = g.reverse_edges();
        assert_eq!(rev.len(), g.directed_edges());
        for u in g.nodes() {
            for (e, &v) in g.out_slot_range(u).zip(g.neighbors(u)) {
                assert_eq!(rev[e], g.directed_edge(v, u).unwrap());
                assert_eq!(rev[rev[e]], e);
                assert_eq!(g.edge_head(rev[e]), u);
            }
        }
    }

    #[test]
    fn reverse_edges_cache_is_stable_and_invisible() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let h = g.clone();
        assert_eq!(g, h, "cache never enters equality");
        // Force the cache on one side only; equality and serialization
        // must not see it.
        let first = g.reverse_edges().as_ptr();
        assert_eq!(
            g.reverse_edges().as_ptr(),
            first,
            "second call reuses the cached table"
        );
        assert_eq!(g, h);
        assert_eq!(g.to_value(), h.to_value(), "serialized form ignores cache");
        let back = Graph::from_value(&g.to_value()).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.reverse_edges(), g.reverse_edges());
        // `with_ids` keeps the topology, hence may keep the cache.
        let relabeled = g.with_ids(vec![9, 8, 7, 6, 5]).unwrap();
        assert_eq!(relabeled.reverse_edges(), h.reverse_edges());
    }

    #[test]
    fn content_hash_tracks_content_not_provenance() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        // Stable across clones and serde round trips: same bytes, same
        // hash (this is what lets the serve LRU key on it).
        assert_eq!(g.content_hash(), g.clone().content_hash());
        let back = Graph::from_value(&g.to_value()).unwrap();
        assert_eq!(back.content_hash(), g.content_hash());
        // Relabeling — new ids on the same topology — is a different
        // content (CSV exports, --source lookups all change meaning).
        let relabeled = g.clone().with_ids(vec![9, 8, 7, 6, 5]).unwrap();
        assert_ne!(relabeled.content_hash(), g.content_hash());
        // A reordered CSR (isomorphic, ids preserved) also differs.
        let (permuted, _) = crate::gen::grid(4, 4).relabeled(crate::NodeOrder::Bfs);
        assert_ne!(
            permuted.content_hash(),
            crate::gen::grid(4, 4).content_hash()
        );
        // Weights feed the hash too.
        let unit = Graph::from_weighted_edges(3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let heavy = Graph::from_weighted_edges(3, [(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        assert_ne!(unit.content_hash(), heavy.content_hash());
        let plain = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert_ne!(unit.content_hash(), plain.content_hash());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.min_id_node(), None);
        assert_eq!(g.max_degree(), 0);
        assert!(!g.is_weighted());
        assert_eq!(g.max_edge_weight(), 1.0);
    }

    #[test]
    fn weighted_build_aligns_slots() {
        let g = Graph::from_weighted_edges(4, [(0, 1, 2.5), (1, 2, 0.5), (2, 3, 4.0)]).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(NodeId::new(0), NodeId::new(1)), Some(2.5));
        assert_eq!(g.edge_weight(NodeId::new(1), NodeId::new(0)), Some(2.5));
        assert_eq!(g.edge_weight(NodeId::new(1), NodeId::new(2)), Some(0.5));
        assert_eq!(g.edge_weight(NodeId::new(0), NodeId::new(3)), None);
        assert_eq!(g.max_edge_weight(), 4.0);
        // Every directed slot carries its undirected edge's weight.
        for u in g.nodes() {
            for (e, &v) in g.out_slot_range(u).zip(g.neighbors(u)) {
                assert_eq!(g.weight(e), g.edge_weight(u, v).unwrap());
                assert_eq!(g.weight(e), g.weight(g.reverse_edges()[e]));
            }
        }
    }

    #[test]
    fn unweighted_graph_reports_unit_weights() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert!(!g.is_weighted());
        assert_eq!(g.weights(), None);
        assert_eq!(g.edge_weight(NodeId::new(0), NodeId::new(1)), Some(1.0));
        assert_eq!(g.weight(0), 1.0);
    }

    #[test]
    fn duplicate_weighted_edges_keep_minimum() {
        let g = Graph::from_weighted_edges(3, [(0, 1, 5.0), (1, 0, 2.0), (0, 1, 7.5), (1, 2, 3.0)])
            .unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.edge_weight(NodeId::new(0), NodeId::new(1)), Some(2.0));
        // A plain edge() duplicate counts as weight 1.
        let mut b = Graph::builder(2);
        b.weighted_edge(0, 1, 6.0).edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.edge_weight(NodeId::new(0), NodeId::new(1)), Some(1.0));
    }

    #[test]
    fn invalid_weights_rejected() {
        for w in [-1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Graph::from_weighted_edges(3, [(0, 1, w)]).unwrap_err();
            assert!(
                matches!(err, GraphError::InvalidWeight { u: 0, v: 1, .. }),
                "weight {w}: {err:?}"
            );
            assert!(!err.to_string().is_empty());
        }
        // Zero is a legal (if degenerate) weight.
        assert!(Graph::from_weighted_edges(3, [(0, 1, 0.0)]).is_ok());
    }

    #[test]
    fn weighted_edges_iterates_with_weights() {
        let g = Graph::from_weighted_edges(4, [(2, 3, 0.25), (0, 1, 1.5)]).unwrap();
        let edges: Vec<(usize, usize, f64)> = g
            .weighted_edges()
            .map(|(u, v, w)| (u.index(), v.index(), w))
            .collect();
        assert_eq!(edges, vec![(0, 1, 1.5), (2, 3, 0.25)]);
        // Unweighted graphs yield unit weights.
        let h = Graph::from_edges(3, [(0, 2)]).unwrap();
        assert_eq!(
            h.weighted_edges().map(|(_, _, w)| w).collect::<Vec<_>>(),
            vec![1.0]
        );
    }

    #[test]
    fn oversize_node_counts_error_before_allocating() {
        // One past the last representable index is fine as a count…
        let limit = u32::MAX as u64 + 1;
        // …anything beyond must come back as TooManyNodes, up front —
        // this call must not try to allocate the 32 GB offsets array.
        let err = Graph::builder(limit as usize + 1).build().unwrap_err();
        assert!(matches!(err, GraphError::TooManyNodes { .. }), "{err:?}");
        assert!(err.to_string().contains("u32 index space"));
        let err = Graph::from_edge_stream(usize::MAX, || [(0usize, 1usize)]).unwrap_err();
        assert!(matches!(err, GraphError::TooManyNodes { .. }), "{err:?}");
    }

    #[test]
    fn edge_stream_build_matches_builder() {
        // Duplicates (both orientations), unsorted, weighted and not —
        // the streaming two-pass build must agree with GraphBuilder
        // bit-for-bit, including the min-weight collapse policy.
        let edges = [(3usize, 1usize), (0, 3), (3, 4), (1, 0), (1, 3), (4, 3)];
        let a = Graph::from_edges(5, edges).unwrap();
        let b = Graph::from_edge_stream(5, || edges).unwrap();
        assert_eq!(a, b);

        let wedges = [
            (0usize, 1usize, 5.0f64),
            (1, 0, 2.0),
            (0, 1, 7.5),
            (1, 2, 3.0),
            (2, 1, 3.5),
        ];
        let a = Graph::from_weighted_edges(3, wedges).unwrap();
        let b = Graph::from_weighted_edge_stream(3, || wedges).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.edge_weight(NodeId::new(0), NodeId::new(1)), Some(2.0));
        assert_eq!(b.edge_weight(NodeId::new(1), NodeId::new(2)), Some(3.0));
    }

    #[test]
    fn edge_stream_rejects_invalid_and_nondeterministic_streams() {
        assert_eq!(
            Graph::from_edge_stream(3, || [(1usize, 1usize)]),
            Err(GraphError::SelfLoop { node: 1 })
        );
        assert_eq!(
            Graph::from_edge_stream(3, || [(0usize, 5usize)]),
            Err(GraphError::NodeOutOfRange { node: 5, n: 3 })
        );
        // A stream that yields different edges on its second invocation
        // must be reported, not silently corrupt the CSR.
        let mut call = 0;
        let err = Graph::from_edge_stream(4, move || {
            call += 1;
            if call == 1 {
                vec![(0usize, 1usize)]
            } else {
                vec![(2usize, 3usize)]
            }
        })
        .unwrap_err();
        assert!(
            err.to_string().contains("changed between counting passes"),
            "{err}"
        );
    }

    #[test]
    fn weights_survive_with_ids_and_serde() {
        let g = Graph::from_weighted_edges(3, [(0, 1, 2.0), (1, 2, 3.0)])
            .unwrap()
            .with_ids(vec![9, 8, 7])
            .unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(NodeId::new(1), NodeId::new(2)), Some(3.0));
        let back = Graph::from_value(&g.to_value()).unwrap();
        assert_eq!(back, g);
        assert!(back.is_weighted());
        // A unit-weighted graph is not equal to its unweighted twin, and
        // their serialized forms differ (the `weights` field).
        let unit = Graph::from_weighted_edges(3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let plain = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert_ne!(unit, plain);
        assert_ne!(unit.to_value(), plain.to_value());
        // Pre-weights artifacts (no `weights` field) still deserialize.
        let old = Graph::from_value(&plain.to_value()).unwrap();
        assert!(!old.is_weighted());
    }
}
