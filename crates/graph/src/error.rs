//! Error types for graph construction.

use std::error::Error;
use std::fmt;

/// Errors produced when building or transforming a [`Graph`](crate::Graph).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referenced a node index `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph under construction.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied; SDND graphs are simple.
    SelfLoop {
        /// The node with the self-loop.
        node: usize,
    },
    /// An identifier assignment was not injective.
    DuplicateId {
        /// The identifier that appeared more than once.
        id: u64,
    },
    /// An identifier assignment had the wrong length.
    IdLengthMismatch {
        /// Number of identifiers supplied.
        got: usize,
        /// Number of nodes in the graph.
        expected: usize,
    },
    /// A generator was asked for an impossible parameter combination
    /// (for example a `d`-regular graph with `n * d` odd).
    InvalidParameter {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// An edge weight was negative, NaN, or infinite. Weighted distances
    /// require finite non-negative weights; the builder rejects anything
    /// else instead of letting Dijkstra misbehave downstream.
    InvalidWeight {
        /// Tail of the offending edge.
        u: usize,
        /// Head of the offending edge.
        v: usize,
        /// The rejected weight.
        weight: f64,
    },
    /// The requested node count does not fit the `u32` index space of
    /// [`NodeId`](crate::NodeId). Builders and loaders check this up
    /// front (before allocating anything `O(n)`) so oversize inputs are
    /// a clean error instead of a `NodeId::new` panic mid-build.
    TooManyNodes {
        /// The requested node count.
        n: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateId { id } => write!(f, "duplicate node identifier {id}"),
            GraphError::IdLengthMismatch { got, expected } => {
                write!(f, "identifier list has length {got}, expected {expected}")
            }
            GraphError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            GraphError::InvalidWeight { u, v, weight } => {
                write!(
                    f,
                    "edge ({u}, {v}) has invalid weight {weight} (must be finite and non-negative)"
                )
            }
            GraphError::TooManyNodes { n } => {
                write!(
                    f,
                    "node count {n} exceeds the u32 index space ({} nodes max)",
                    u32::MAX as u64 + 1
                )
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty() {
        let errs = [
            GraphError::NodeOutOfRange { node: 9, n: 4 },
            GraphError::SelfLoop { node: 1 },
            GraphError::DuplicateId { id: 3 },
            GraphError::IdLengthMismatch {
                got: 2,
                expected: 3,
            },
            GraphError::InvalidParameter {
                reason: "nd odd".into(),
            },
            GraphError::InvalidWeight {
                u: 0,
                v: 1,
                weight: -2.0,
            },
            GraphError::TooManyNodes { n: usize::MAX },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
