//! Bit-parallel multi-source BFS (MS-BFS).
//!
//! Runs up to [`MS_LANES`] = 64 independent BFS traversals in one shared
//! frontier pass over the adjacency structure: each node carries a `u64`
//! word per state array (`seen`, `visit`, `visit_next`), bit `l` of a
//! word belonging to traversal lane `l`. When a frontier node `u` scans
//! a neighbor `v`, the word operation `visit[u] & !seen[v]` discovers
//! `v` for *every* lane reaching it this level at once, so 64
//! traversals cost one adjacency scan per level instead of 64 (the
//! "more the merrier" batching of Then et al., VLDB 2014). The win is
//! largest when the lane sources are near each other — exactly the
//! validator situation, where every source is a member of one cluster —
//! because then the lanes' frontiers overlap and most nodes enter the
//! shared frontier once instead of 64 times.
//!
//! Scratch lives in the [`TraversalWorkspace`] (epoch-stamped like the
//! hop and weighted arenas: starting a batch is one epoch increment, and
//! a run abandoned mid-flight by an unwinding caller is invalidated
//! wholesale by the next increment). Results are read through
//! [`MsBfsRun`], a borrowed view with per-(node, lane) distances and
//! per-lane censuses (reached counts, eccentricities, cumulative ball
//! sizes).
//!
//! Per-lane distances are value-identical to running [`super::bfs_in`]
//! once per lane source; the proptests in `tests/msbfs_equivalence.rs`
//! pin this on arbitrary graphs and subset views, bounded and unbounded,
//! including the targeted early-exit variant.

use crate::{Adjacency, NodeId, NodeSet};

use super::bfs::UNREACHED;
use super::workspace::{TraversalWorkspace, MAX_HOP_DIST};

/// Number of traversal lanes per batch: the width of the `u64` state
/// words. Callers with more sources chunk them `MS_LANES` at a time.
pub const MS_LANES: usize = 64;

/// Per-lane eccentricity sentinel: nothing reached in that lane.
const ECC_NONE: u32 = u32::MAX;

/// Per-node lane-word scratch for MS-BFS batches, pooled inside a
/// [`TraversalWorkspace`]. Entries of `seen` / `visit` / `visit_next` /
/// `dist` are meaningful only where `stamp` equals the current epoch;
/// nodes are lazily re-zeroed on first touch per epoch.
#[derive(Debug, Default)]
pub(super) struct MsScratch {
    epoch: u32,
    stamp: Vec<u32>,
    seen: Vec<u64>,
    visit: Vec<u64>,
    visit_next: Vec<u64>,
    /// Per-(node, lane) distances, node-major with stride `lanes`.
    dist: Vec<u32>,
    cur: Vec<NodeId>,
    next: Vec<NodeId>,
    lanes: usize,
    reached: Vec<usize>,
    ecc: Vec<u32>,
    /// Level-major cumulative ball sizes: `balls[level * lanes + lane]`.
    balls: Vec<usize>,
    remaining: Vec<usize>,
    target_last: Vec<u32>,
    scan_deg: Vec<u64>,
    last_delivery: Vec<u64>,
    /// Batch-ordering scratch ([`ms_batch_order_in`]): `src_*` map nodes
    /// to pending source indices per call, `ball_*` stamp the per-ball
    /// visited state, `queue` is the ball frontier.
    src_epoch: u32,
    src_stamp: Vec<u32>,
    src_idx: Vec<u32>,
    ball_epoch: u32,
    ball_stamp: Vec<u32>,
    queue: Vec<NodeId>,
}

impl MsScratch {
    fn begin(&mut self, universe: usize, lanes: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch counter wrapped: one full clear re-arms the stamps.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        if self.stamp.len() < universe {
            self.stamp.resize(universe, 0);
        }
        if self.seen.len() < universe {
            self.seen.resize(universe, 0);
        }
        if self.visit.len() < universe {
            self.visit.resize(universe, 0);
        }
        if self.visit_next.len() < universe {
            self.visit_next.resize(universe, 0);
        }
        // The distance grid grows to universe × lanes of *this* run; a
        // narrower batch after a wide one simply indexes with a smaller
        // stride (stale entries are unreadable without a matching stamp
        // and seen bit).
        let need = universe.saturating_mul(lanes);
        if self.dist.len() < need {
            self.dist.resize(need, UNREACHED);
        }
        self.lanes = lanes;
        self.cur.clear();
        self.next.clear();
        self.reached.clear();
        self.reached.resize(lanes, 0);
        self.ecc.clear();
        self.ecc.resize(lanes, ECC_NONE);
        self.balls.clear();
        self.remaining.clear();
        self.remaining.resize(lanes, 0);
        self.target_last.clear();
        self.target_last.resize(lanes, 0);
        self.scan_deg.clear();
        self.scan_deg.resize(lanes, 0);
        self.last_delivery.clear();
        self.last_delivery.resize(lanes, 0);
    }

    /// Lazily zeroes the lane words of `v` on its first touch this epoch.
    #[inline]
    fn touch(&mut self, v: usize) {
        if self.stamp[v] != self.epoch {
            self.stamp[v] = self.epoch;
            self.seen[v] = 0;
            self.visit[v] = 0;
            self.visit_next[v] = 0;
        }
    }

    /// Seeds `s` into `lane` at level 0. Returns the lane bit when the
    /// seed took (in-view and new to the lane), 0 otherwise — sources
    /// outside the view leave their lane empty, mirroring `bfs_in`'s
    /// source filtering.
    fn seed<A: Adjacency>(
        &mut self,
        view: &A,
        lane: usize,
        s: NodeId,
        targets: Option<&NodeSet>,
        active: &mut u64,
    ) -> u64 {
        if !view.contains(s) {
            return 0;
        }
        let si = s.index();
        self.touch(si);
        let bit = 1u64 << lane;
        if self.seen[si] & bit != 0 {
            return 0;
        }
        self.seen[si] |= bit;
        if self.visit[si] == 0 {
            self.cur.push(s);
        }
        self.visit[si] |= bit;
        self.dist[si * self.lanes + lane] = 0;
        self.reached[lane] += 1;
        if let Some(t) = targets {
            if t.contains(s) {
                self.remaining[lane] -= 1;
                if self.remaining[lane] == 0 {
                    *active &= !bit;
                }
            }
        }
        bit
    }

    fn push_ball_row(&mut self) {
        for lane in 0..self.lanes {
            self.balls.push(self.reached[lane]);
        }
    }
}

/// How a batch's lanes are seeded.
enum MsSeeds<'a> {
    /// One source node per lane.
    Nodes(&'a [NodeId]),
    /// A whole source set per lane.
    Sets(&'a [&'a NodeSet]),
}

impl MsSeeds<'_> {
    fn lanes(&self) -> usize {
        match self {
            MsSeeds::Nodes(s) => s.len(),
            MsSeeds::Sets(s) => s.len(),
        }
    }
}

/// Runs one batch of up to 64 full BFS traversals over `view`; lane `l`
/// is seeded from `sources[l]`.
///
/// # Panics
///
/// Panics when `sources.len() > MS_LANES`; callers chunk.
pub fn msbfs_in<'w, A: Adjacency>(
    ws: &'w mut TraversalWorkspace,
    view: &A,
    sources: &[NodeId],
) -> MsBfsRun<'w> {
    msbfs_core(ws, view, MsSeeds::Nodes(sources), u32::MAX, None, false)
}

/// [`msbfs_in`] truncated at distance `max_dist` (inclusive), the batch
/// counterpart of [`super::bfs_bounded_in`].
pub fn msbfs_bounded_in<'w, A: Adjacency>(
    ws: &'w mut TraversalWorkspace,
    view: &A,
    sources: &[NodeId],
    max_dist: u32,
) -> MsBfsRun<'w> {
    msbfs_core(ws, view, MsSeeds::Nodes(sources), max_dist, None, false)
}

/// [`msbfs_in`] with per-lane early exit: a lane stops participating in
/// the shared frontier as soon as *its* copy of every member of
/// `targets` has been reached (the batch counterpart of
/// [`super::bfs_to_in`]'s remaining-targets count). Target distances are
/// final per lane; the rest of a finished lane's run is truncated.
pub fn msbfs_to_in<'w, A: Adjacency>(
    ws: &'w mut TraversalWorkspace,
    view: &A,
    sources: &[NodeId],
    targets: &NodeSet,
) -> MsBfsRun<'w> {
    msbfs_core(
        ws,
        view,
        MsSeeds::Nodes(sources),
        u32::MAX,
        Some(targets),
        false,
    )
}

/// Bounded batch with a whole source *set* per lane (the multi-source
/// ball probes of the carving improvement phase: each candidate seed set
/// gets one lane).
///
/// This variant additionally maintains the per-lane CONGEST cost
/// counters ([`MsBfsRun::scan_degree_sum`] /
/// [`MsBfsRun::last_delivery_round`]) so a caller simulating the
/// distributed cost model can charge each lane exactly what a sequential
/// `primitives::bfs` of that lane would have charged: per forwarding
/// node (distance `< max_dist`, alive degree `> 0`), `deg` token sends
/// and a last-delivery round of `dist + 1`.
pub fn msbfs_sets_bounded_in<'w, A: Adjacency>(
    ws: &'w mut TraversalWorkspace,
    view: &A,
    lane_sets: &[&NodeSet],
    max_dist: u32,
) -> MsBfsRun<'w> {
    msbfs_core(ws, view, MsSeeds::Sets(lane_sets), max_dist, None, true)
}

/// Orders `sources` into locality-tight 64-lane batches, returning a
/// permutation of source *indices* (chunk the permuted sources
/// [`MS_LANES`] at a time and feed each chunk to [`msbfs_in`]).
///
/// Bit-parallel batching only beats per-source BFS when the lanes'
/// frontiers overlap: a node re-enters the shared frontier once per
/// distinct lane discovery level, so 64 sources strung along a line (say
/// consecutive row-major ids on a grid) cost nearly 64 separate sweeps
/// plus word-op overhead. This routine greedily packs each batch as a
/// BFS ball instead: it seeds a fresh traversal at the first pending
/// source and emits pending sources in discovery order until the batch
/// is full (or the component is exhausted), then restarts at the next
/// pending source. Within a batch, lane distances to any node then
/// spread over only the ball's radius, which caps re-expansion at the
/// ball diameter instead of the graph diameter.
///
/// Sources outside `view` and duplicate nodes keep exactly one pending
/// slot for the first occurrence; the leftover indices are appended at
/// the end in input order, so the result is always a permutation of
/// `0..sources.len()`. Cost is one bounded BFS per emitted batch —
/// negligible against the batch's own 64-lane sweep for the dense
/// source sets (cluster members, whole views) this is built for.
pub fn ms_batch_order_in<A: Adjacency>(
    ws: &mut TraversalWorkspace,
    view: &A,
    sources: &[NodeId],
) -> Vec<u32> {
    let m = &mut ws.ms;
    let universe = view.universe();
    m.src_epoch = m.src_epoch.wrapping_add(1);
    if m.src_epoch == 0 {
        m.src_stamp.iter_mut().for_each(|s| *s = 0);
        m.src_epoch = 1;
    }
    if m.src_stamp.len() < universe {
        m.src_stamp.resize(universe, 0);
    }
    if m.src_idx.len() < universe {
        m.src_idx.resize(universe, 0);
    }
    if m.ball_stamp.len() < universe {
        m.ball_stamp.resize(universe, 0);
    }

    // Deal each distinct in-view source node its first index; everything
    // else (duplicates, out-of-view) rides along at the end untouched.
    let mut order: Vec<u32> = Vec::with_capacity(sources.len());
    let mut leftovers: Vec<u32> = Vec::new();
    let mut pending = 0usize;
    for (i, &s) in sources.iter().enumerate() {
        let si = s.index();
        if view.contains(s) && m.src_stamp[si] != m.src_epoch {
            m.src_stamp[si] = m.src_epoch;
            m.src_idx[si] = i as u32;
            pending += 1;
        } else {
            leftovers.push(i as u32);
        }
    }

    let mut cursor = 0usize;
    while pending > 0 {
        // Next ball seed: the first input source still pending. The
        // cursor only moves forward, so seed scans are linear overall.
        while {
            let s = sources[cursor];
            !view.contains(s)
                || m.src_stamp[s.index()] != m.src_epoch
                || m.src_idx[s.index()] == u32::MAX
        } {
            cursor += 1;
        }
        let seed = sources[cursor];

        m.ball_epoch = m.ball_epoch.wrapping_add(1);
        if m.ball_epoch == 0 {
            m.ball_stamp.iter_mut().for_each(|s| *s = 0);
            m.ball_epoch = 1;
        }
        m.queue.clear();
        m.queue.push(seed);
        m.ball_stamp[seed.index()] = m.ball_epoch;
        let mut collected = 0usize;
        let mut qi = 0usize;
        while qi < m.queue.len() {
            let u = m.queue[qi];
            qi += 1;
            let ui = u.index();
            if m.src_stamp[ui] == m.src_epoch && m.src_idx[ui] != u32::MAX {
                order.push(m.src_idx[ui]);
                // Emitted: burn the slot but keep the stamp so the seed
                // scan's pending test stays one comparison.
                m.src_idx[ui] = u32::MAX;
                pending -= 1;
                collected += 1;
                if collected == MS_LANES || pending == 0 {
                    break;
                }
            }
            for v in view.neighbors(u) {
                let vi = v.index();
                if m.ball_stamp[vi] != m.ball_epoch {
                    m.ball_stamp[vi] = m.ball_epoch;
                    m.queue.push(v);
                }
            }
        }
    }
    order.extend_from_slice(&leftovers);
    order
}

fn msbfs_core<'w, A: Adjacency>(
    ws: &'w mut TraversalWorkspace,
    view: &A,
    seeds: MsSeeds<'_>,
    max_dist: u32,
    targets: Option<&NodeSet>,
    track_cost: bool,
) -> MsBfsRun<'w> {
    let lanes = seeds.lanes();
    assert!(
        lanes <= MS_LANES,
        "msbfs: {lanes} sources exceed the {MS_LANES}-lane batch width; chunk the sources"
    );
    // Same sentinel guard as bfs_core: with `level < max_dist <=
    // MAX_HOP_DIST`, `level + 1` can never mint the UNREACHED sentinel.
    let max_dist = max_dist.min(MAX_HOP_DIST);
    let m = &mut ws.ms;
    m.begin(view.universe(), lanes);

    let full: u64 = if lanes == MS_LANES {
        !0u64
    } else {
        (1u64 << lanes) - 1
    };
    let mut active = full;
    if let Some(t) = targets {
        let t_len = t.len();
        for lane in 0..lanes {
            m.remaining[lane] = t_len;
        }
        if t_len == 0 {
            // Vacuous target set: every lane stops at its sources
            // (mirroring bfs_core's `remaining > 0` loop gate).
            active = 0;
        }
    }

    let mut seeded = 0u64;
    match seeds {
        MsSeeds::Nodes(list) => {
            for (lane, &s) in list.iter().enumerate() {
                seeded |= m.seed(view, lane, s, targets, &mut active);
            }
        }
        MsSeeds::Sets(sets) => {
            for (lane, set) in sets.iter().enumerate() {
                for s in set.iter() {
                    seeded |= m.seed(view, lane, s, targets, &mut active);
                }
            }
        }
    }
    let mut bits = seeded;
    while bits != 0 {
        let lane = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        m.ecc[lane] = 0;
    }
    if !m.cur.is_empty() {
        m.push_ball_row();
    }

    let mut level: u32 = 0;
    while !m.cur.is_empty() && active != 0 && level < max_dist {
        let next_level = level + 1;
        // Lanes that discovered at least one node this level.
        let mut discovered = 0u64;
        let mut i = 0;
        while i < m.cur.len() {
            let u = m.cur[i];
            i += 1;
            let mu = m.visit[u.index()] & active;
            if mu == 0 {
                continue;
            }
            let mut deg = 0u64;
            for v in view.neighbors(u) {
                deg += 1;
                let vi = v.index();
                m.touch(vi);
                let new = mu & !m.seen[vi] & active;
                if new == 0 {
                    continue;
                }
                if m.visit_next[vi] == 0 {
                    m.next.push(v);
                }
                m.visit_next[vi] |= new;
                m.seen[vi] |= new;
                discovered |= new;
                let base = vi * lanes;
                let mut bits = new;
                while bits != 0 {
                    let lane = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    m.dist[base + lane] = next_level;
                    m.reached[lane] += 1;
                }
                if targets.is_some_and(|t| t.contains(v)) {
                    let mut bits = new;
                    while bits != 0 {
                        let lane = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        m.remaining[lane] -= 1;
                        m.target_last[lane] = next_level;
                        if m.remaining[lane] == 0 {
                            active &= !(1u64 << lane);
                        }
                    }
                }
            }
            if track_cost && deg > 0 {
                let mut bits = mu;
                while bits != 0 {
                    let lane = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    m.scan_deg[lane] += deg;
                    m.last_delivery[lane] = m.last_delivery[lane].max(next_level as u64);
                }
            }
        }
        // Retire the expanded frontier and promote the next one. The
        // invariant "visit is nonzero exactly on `cur`" makes the swapped
        // array a clean `visit_next` for the coming level.
        for idx in 0..m.cur.len() {
            let ui = m.cur[idx].index();
            m.visit[ui] = 0;
        }
        std::mem::swap(&mut m.visit, &mut m.visit_next);
        std::mem::swap(&mut m.cur, &mut m.next);
        m.next.clear();
        level = next_level;
        if discovered != 0 {
            let mut bits = discovered;
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                m.ecc[lane] = level;
            }
            m.push_ball_row();
        }
    }

    ws.ms_run()
}

impl TraversalWorkspace {
    /// A read view of the most recent MS-BFS batch (empty before the
    /// first batch runs).
    pub fn ms_run(&self) -> MsBfsRun<'_> {
        let m = &self.ms;
        MsBfsRun {
            epoch: m.epoch,
            lanes: m.lanes,
            stamp: &m.stamp,
            seen: &m.seen,
            dist: &m.dist,
            reached: &m.reached,
            ecc: &m.ecc,
            balls: &m.balls,
            remaining: &m.remaining,
            target_last: &m.target_last,
            scan_deg: &m.scan_deg,
            last_delivery: &m.last_delivery,
        }
    }
}

/// Borrowed view of one MS-BFS batch inside a [`TraversalWorkspace`].
///
/// Lane accessors are value-identical to the corresponding
/// [`super::BfsRun`] accessors of a sequential BFS from that lane's
/// sources, with one census caveat: [`ball_size`](Self::ball_size)
/// clamps radii to the *batch's* deepest level rather than the lane's
/// own eccentricity (the clamped value is the lane's final reached
/// count either way — use [`eccentricity`](Self::eccentricity) to
/// recover the lane's own census length).
#[derive(Clone, Copy)]
pub struct MsBfsRun<'w> {
    epoch: u32,
    lanes: usize,
    stamp: &'w [u32],
    seen: &'w [u64],
    dist: &'w [u32],
    reached: &'w [usize],
    ecc: &'w [u32],
    balls: &'w [usize],
    remaining: &'w [usize],
    target_last: &'w [u32],
    scan_deg: &'w [u64],
    last_delivery: &'w [u64],
}

impl MsBfsRun<'_> {
    /// Number of lanes in this batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Distance from lane `lane`'s sources to `v`, or [`UNREACHED`].
    #[inline]
    pub fn dist(&self, v: NodeId, lane: usize) -> u32 {
        debug_assert!(lane < self.lanes);
        let i = v.index();
        if i < self.stamp.len() && self.stamp[i] == self.epoch && self.seen[i] >> lane & 1 != 0 {
            self.dist[i * self.lanes + lane]
        } else {
            UNREACHED
        }
    }

    /// Whether lane `lane` reached `v`.
    #[inline]
    pub fn reached(&self, v: NodeId, lane: usize) -> bool {
        debug_assert!(lane < self.lanes);
        let i = v.index();
        i < self.stamp.len() && self.stamp[i] == self.epoch && self.seen[i] >> lane & 1 != 0
    }

    /// Number of nodes lane `lane` reached.
    pub fn reached_count(&self, lane: usize) -> usize {
        self.reached[lane]
    }

    /// Largest distance lane `lane` reached (`None` if it reached
    /// nothing).
    pub fn eccentricity(&self, lane: usize) -> Option<u32> {
        (self.ecc[lane] != ECC_NONE).then(|| self.ecc[lane])
    }

    /// Number of nodes lane `lane` reached within distance `r`, clamped
    /// like [`super::BfsRun::ball_size`]: radii beyond the batch's
    /// deepest level return the lane's total reached count, and a lane
    /// that reached nothing returns 0 for every radius.
    pub fn ball_size(&self, lane: usize, r: u32) -> usize {
        if self.lanes == 0 {
            return 0;
        }
        match self.balls.len() / self.lanes {
            0 => 0,
            rows => self.balls[(r as usize).min(rows - 1) * self.lanes + lane],
        }
    }

    /// Targets lane `lane` had not yet reached when the batch stopped
    /// (meaningful only for [`msbfs_to_in`] batches; 0 means the lane's
    /// sweep completed).
    pub fn targets_remaining(&self, lane: usize) -> usize {
        self.remaining[lane]
    }

    /// Largest distance at which lane `lane` discovered a target (0 when
    /// the lane's only targets were its own seeds, or when the batch had
    /// no target set). When
    /// [`targets_remaining`](Self::targets_remaining) is 0, this is the
    /// lane's eccentricity *restricted to the targets* — the
    /// farthest-member distance the weak-diameter validators fold,
    /// without an `O(|targets|)` per-lane distance read-back.
    pub fn last_target_level(&self, lane: usize) -> u32 {
        self.target_last[lane]
    }

    /// Summed alive degree of lane `lane`'s forwarding nodes — the
    /// CONGEST token-send count of an equivalent sequential distributed
    /// BFS (maintained only by [`msbfs_sets_bounded_in`]).
    pub fn scan_degree_sum(&self, lane: usize) -> u64 {
        self.scan_deg[lane]
    }

    /// Last round in which lane `lane` delivered a token (0 when nothing
    /// forwarded; maintained only by [`msbfs_sets_bounded_in`]).
    pub fn last_delivery_round(&self, lane: usize) -> u64 {
        self.last_delivery[lane]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{bfs_bounded_in, bfs_in, bfs_to_in};
    use crate::{gen, Graph};

    fn ids(v: &[usize]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId::new).collect()
    }

    /// Per-lane outputs must match a sequential BFS from the same source.
    fn assert_lane_matches_bfs<A: Adjacency>(view: &A, sources: &[NodeId], max_dist: u32) {
        let mut ws = TraversalWorkspace::new();
        let mut seq = TraversalWorkspace::new();
        let run = msbfs_bounded_in(&mut ws, view, sources, max_dist);
        for (lane, &s) in sources.iter().enumerate() {
            let own = bfs_bounded_in(&mut seq, view, [s], max_dist);
            assert_eq!(run.reached_count(lane), own.reached_count(), "lane {lane}");
            assert_eq!(run.eccentricity(lane), own.eccentricity(), "lane {lane}");
            for i in 0..view.universe() {
                let v = NodeId::new(i);
                assert_eq!(run.dist(v, lane), own.dist(v), "lane {lane} node {i}");
                assert_eq!(run.reached(v, lane), own.reached(v), "lane {lane} node {i}");
            }
            if let Some(e) = own.eccentricity() {
                for r in 0..=e + 2 {
                    assert_eq!(
                        run.ball_size(lane, r),
                        own.ball_size(r),
                        "lane {lane} r {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_sequential_bfs_on_grid() {
        let g = gen::grid(7, 9);
        let sources: Vec<NodeId> = (0..63).map(NodeId::new).collect();
        assert_lane_matches_bfs(&g.full_view(), &sources, u32::MAX);
    }

    #[test]
    fn matches_sequential_bfs_full_64_lanes() {
        let g = gen::gnp_connected(80, 0.06, 11);
        let sources: Vec<NodeId> = (0..64).map(NodeId::new).collect();
        assert_lane_matches_bfs(&g.full_view(), &sources, u32::MAX);
        assert_lane_matches_bfs(&g.full_view(), &sources, 3);
    }

    #[test]
    fn subset_view_and_out_of_view_sources() {
        let g = gen::grid(6, 6);
        let alive = NodeSet::from_nodes(36, (0..36).filter(|&i| i % 7 != 3).map(NodeId::new));
        let view = g.view(&alive);
        // Source 3 is dead: its lane must stay empty.
        let sources = ids(&[0, 3, 35]);
        assert_lane_matches_bfs(&view, &sources, u32::MAX);
        let mut ws = TraversalWorkspace::new();
        let run = msbfs_in(&mut ws, &view, &sources);
        assert_eq!(run.reached_count(1), 0);
        assert_eq!(run.eccentricity(1), None);
        assert_eq!(run.ball_size(1, 5), 0);
    }

    #[test]
    fn duplicate_sources_share_a_frontier_entry() {
        let g = gen::path(10);
        let sources = ids(&[4, 4, 0]);
        assert_lane_matches_bfs(&g.full_view(), &sources, u32::MAX);
    }

    #[test]
    fn bounded_truncates_each_lane() {
        let g = gen::path(12);
        let sources = ids(&[0, 11]);
        assert_lane_matches_bfs(&g.full_view(), &sources, 4);
        let mut ws = TraversalWorkspace::new();
        let run = msbfs_bounded_in(&mut ws, &g.full_view(), &sources, 0);
        assert_eq!(run.reached_count(0), 1);
        assert_eq!(run.eccentricity(0), Some(0));
    }

    #[test]
    fn targeted_lanes_stop_early_with_final_target_distances() {
        let g = gen::path(20);
        let mut ws = TraversalWorkspace::new();
        let targets = NodeSet::from_nodes(20, ids(&[2, 4]));
        let sources = ids(&[0, 19]);
        let run = msbfs_to_in(&mut ws, &g.full_view(), &sources, &targets);
        // Lane 0 (source 0) covers its targets by level 4 and stops.
        assert_eq!(run.dist(NodeId::new(2), 0), 2);
        assert_eq!(run.dist(NodeId::new(4), 0), 4);
        assert_eq!(run.targets_remaining(0), 0);
        assert!(!run.reached(NodeId::new(10), 0), "lane 0 truncated");
        // With all targets reached, last_target_level is the lane's
        // farthest-target distance.
        assert_eq!(run.last_target_level(0), 4);
        // Lane 1 (source 19) must walk the whole path to reach node 2.
        assert_eq!(run.dist(NodeId::new(2), 1), 17);
        assert_eq!(run.targets_remaining(1), 0);
        assert_eq!(run.last_target_level(1), 17);
        // Target distances agree with the sequential targeted sweep.
        let mut seq = TraversalWorkspace::new();
        for (lane, &s) in sources.iter().enumerate() {
            let own = bfs_to_in(&mut seq, &g.full_view(), [s], &targets);
            for t in targets.iter() {
                assert_eq!(run.dist(t, lane), own.dist(t), "lane {lane}");
            }
        }
    }

    #[test]
    fn unreachable_target_exhausts_the_lane() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut ws = TraversalWorkspace::new();
        let targets = NodeSet::from_nodes(6, ids(&[2, 4]));
        let run = msbfs_to_in(&mut ws, &g.full_view(), &ids(&[0, 3]), &targets);
        assert_eq!(run.dist(NodeId::new(2), 0), 2);
        assert_eq!(run.targets_remaining(0), 1, "node 4 unreachable from 0");
        assert_eq!(run.targets_remaining(1), 1, "node 2 unreachable from 3");
        assert_eq!(run.dist(NodeId::new(4), 1), 1);
        // last_target_level still reports the farthest *reached* target.
        assert_eq!(run.last_target_level(0), 2);
        assert_eq!(run.last_target_level(1), 1);
    }

    #[test]
    fn set_lanes_match_multi_source_bfs() {
        let g = gen::grid(8, 8);
        let mut ws = TraversalWorkspace::new();
        let s1 = NodeSet::from_nodes(64, ids(&[0, 9, 18]));
        let s2 = NodeSet::from_nodes(64, ids(&[63]));
        let run = msbfs_sets_bounded_in(&mut ws, &g.full_view(), &[&s1, &s2], u32::MAX);
        let mut seq = TraversalWorkspace::new();
        for (lane, set) in [&s1, &s2].into_iter().enumerate() {
            let own = bfs_in(&mut seq, &g.full_view(), set.iter());
            assert_eq!(run.reached_count(lane), own.reached_count());
            assert_eq!(run.eccentricity(lane), own.eccentricity());
            for i in 0..64 {
                let v = NodeId::new(i);
                assert_eq!(run.dist(v, lane), own.dist(v), "lane {lane} node {i}");
            }
            for r in 0..=own.eccentricity().unwrap() {
                assert_eq!(run.ball_size(lane, r), own.ball_size(r), "lane {lane}");
            }
        }
    }

    #[test]
    fn set_lanes_track_congest_cost_counters() {
        // Mirror primitives::bfs's charge formula sequentially and
        // compare: per node at distance < max_dist with alive degree
        // deg > 0, deg sends and a last delivery of dist + 1.
        let g = gen::gnp_connected(50, 0.08, 5);
        let view = g.full_view();
        let mut ws = TraversalWorkspace::new();
        let s1 = NodeSet::from_nodes(50, ids(&[0, 7]));
        let s2 = NodeSet::from_nodes(50, ids(&[49]));
        for max_dist in [u32::MAX, 2, 0] {
            let run = msbfs_sets_bounded_in(&mut ws, &view, &[&s1, &s2], max_dist);
            let mut expect = Vec::new();
            let mut seq = TraversalWorkspace::new();
            for set in [&s1, &s2] {
                let own = bfs_in(&mut seq, &view, set.iter());
                let r_max = max_dist.min(MAX_HOP_DIST);
                let mut sends = 0u64;
                let mut last = 0u64;
                for &v in own.order() {
                    let d = own.dist(v);
                    if d < r_max {
                        let deg = view.neighbors(v).count() as u64;
                        if deg > 0 {
                            sends += deg;
                            last = last.max(d as u64 + 1);
                        }
                    }
                }
                expect.push((sends, last));
            }
            for (lane, &(sends, last)) in expect.iter().enumerate() {
                assert_eq!(run.scan_degree_sum(lane), sends, "lane {lane}");
                assert_eq!(run.last_delivery_round(lane), last, "lane {lane}");
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_lane_sets() {
        let g = gen::path(5);
        let mut ws = TraversalWorkspace::new();
        let run = msbfs_in(&mut ws, &g.full_view(), &[]);
        assert_eq!(run.lanes(), 0);
        let empty = NodeSet::empty(5);
        let run = msbfs_sets_bounded_in(&mut ws, &g.full_view(), &[&empty], u32::MAX);
        assert_eq!(run.reached_count(0), 0);
        assert_eq!(run.eccentricity(0), None);
        assert_eq!(run.scan_degree_sum(0), 0);
        assert_eq!(run.last_delivery_round(0), 0);
    }

    #[test]
    #[should_panic(expected = "64-lane batch width")]
    fn oversized_batch_panics() {
        let g = gen::path(70);
        let mut ws = TraversalWorkspace::new();
        let sources: Vec<NodeId> = (0..65).map(NodeId::new).collect();
        let _ = msbfs_in(&mut ws, &g.full_view(), &sources);
    }

    #[test]
    fn reuse_across_epochs_and_widths_stays_clean() {
        let mut ws = TraversalWorkspace::new();
        let g1 = gen::grid(5, 5);
        let g2 = gen::path(40);
        for round in 0..4 {
            let wide: Vec<NodeId> = (0..20).map(NodeId::new).collect();
            assert_lane_matches_bfs(&g1.full_view(), &wide, u32::MAX);
            let narrow = ids(&[round, 39 - round]);
            let run = msbfs_in(&mut ws, &g2.full_view(), &narrow);
            assert_eq!(run.reached_count(0), 40);
            assert_eq!(
                run.dist(NodeId::new(39), 0),
                39 - run.dist(NodeId::new(39), 1)
            );
        }
    }

    /// `ms_batch_order_in` must return a permutation of `0..len` with
    /// the leftover (duplicate / out-of-view) indices at the tail.
    fn assert_is_permutation(order: &[u32], len: usize) {
        assert_eq!(order.len(), len);
        let mut seen = vec![false; len];
        for &i in order {
            assert!(!seen[i as usize], "index {i} emitted twice");
            seen[i as usize] = true;
        }
    }

    #[test]
    fn batch_order_is_a_permutation_with_leftovers_last() {
        let g = gen::grid(6, 6);
        let alive = NodeSet::from_nodes(36, (0..36).filter(|&i| i != 7).map(NodeId::new));
        let view = g.view(&alive);
        // 5 appears twice; 7 is dead.
        let sources = ids(&[0, 5, 7, 5, 35, 12]);
        let mut ws = TraversalWorkspace::new();
        let order = ms_batch_order_in(&mut ws, &view, &sources);
        assert_is_permutation(&order, sources.len());
        // Leftovers (second 5 at index 3, dead 7 at index 2) close the
        // order in input order.
        assert_eq!(&order[4..], &[2, 3]);
        // The head starts at the first pending source.
        assert_eq!(order[0], 0);
    }

    #[test]
    fn batch_order_packs_locality_tight_balls() {
        // 2×200 grid: row-major ids run along the long axis, so input
        // order strings each 64-batch across half the graph. Ball
        // packing must keep every batch inside a contiguous window.
        let cols = 200usize;
        let g = gen::grid(2, cols);
        let sources: Vec<NodeId> = g.nodes().collect();
        let mut ws = TraversalWorkspace::new();
        let order = ms_batch_order_in(&mut ws, &g.full_view(), &sources);
        assert_is_permutation(&order, sources.len());
        for batch in order.chunks(MS_LANES) {
            let xs: Vec<usize> = batch
                .iter()
                .map(|&i| sources[i as usize].index() % cols)
                .collect();
            let spread = xs.iter().max().unwrap() - xs.iter().min().unwrap();
            // 64 nodes over 2 rows fit in a 32-column window; the greedy
            // ball stays within a small constant of that.
            assert!(spread <= 40, "batch spread {spread} columns");
        }
    }

    #[test]
    fn batch_order_covers_disconnected_components() {
        let g = Graph::from_edges(9, [(0, 1), (1, 2), (3, 4), (6, 7)]).unwrap();
        let sources = ids(&[8, 3, 0, 6, 4, 2]);
        let mut ws = TraversalWorkspace::new();
        let order = ms_batch_order_in(&mut ws, &g.full_view(), &sources);
        assert_is_permutation(&order, sources.len());
        // Same-component sources stay adjacent: 3 and 4 (indices 1, 4).
        let pos = |i: u32| order.iter().position(|&o| o == i).unwrap();
        assert_eq!(pos(1).abs_diff(pos(4)), 1);
        assert_eq!(pos(2).abs_diff(pos(5)), 1, "0..=2 component contiguous");
    }

    #[test]
    fn abandoned_batch_does_not_poison_the_workspace() {
        // An unwinding caller abandons a batch mid-run; the next epoch
        // must invalidate all of its half-written lane words.
        let g = gen::grid(4, 4);
        let mut ws = TraversalWorkspace::new();
        let _ = msbfs_in(&mut ws, &g.full_view(), &ids(&[5]));
        assert_lane_matches_bfs(&g.full_view(), &ids(&[0, 15]), u32::MAX);
        let run = msbfs_in(&mut ws, &g.full_view(), &ids(&[0]));
        assert_eq!(run.reached_count(0), 16);
        assert_eq!(run.dist(NodeId::new(5), 0), 2);
    }
}
