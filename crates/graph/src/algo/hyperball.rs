//! HyperBall: HyperLogLog neighborhood-function estimation.
//!
//! Boldi–Rosa–Vigna's HyperBall keeps one HyperLogLog sketch of `2^p`
//! 6-bit registers per node and iterates the rule
//! `M'[v] = max(M[v], max_{u ∈ N(v)} M[u])` (bytewise max = sketch
//! union). After `t` rounds, node `v`'s sketch describes the set of
//! *seeds* within distance `t` of `v`, so
//!
//! - the count estimate at `v` approximates `|B_t(v) ∩ seeds|` with
//!   relative standard error `≈ 1.04 / √(2^p)`, and
//! - the last round in which `v`'s sketch changed is a **one-sided**
//!   eccentricity estimate: it never exceeds the true distance from `v`
//!   to the farthest reachable seed (register collisions can only make
//!   the sketch stabilize *early*).
//!
//! Those two facts are exactly what the approximate validation tier in
//! `sdnd-clustering` consumes: seeding every node of an induced cluster
//! view bounds the strong diameter from below, seeding the cluster
//! members over the full graph bounds the weak diameter, and comparing
//! the final count estimate against the exactly-known cluster size gives
//! a free in-band/out-of-band check of the estimator itself.
//!
//! The sweep is synchronous (double-buffered): all round-`t` merges read
//! the round-`t−1` registers, so "rounds" are exactly BFS layers. Work
//! per round is limited to nodes with a changed neighbor, and all
//! buffers are reused across sweeps (cleaned up per-participant, so a
//! sweep over a small cluster never pays for the whole universe).

use crate::{Adjacency, Cancelled, Deadline, NodeId, NodeSet};

/// Configuration for a [`HyperBall`] estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperBallParams {
    /// Register-count exponent `p`: `2^p` registers (= bytes) per node,
    /// in `4..=12`.
    pub precision: u8,
    /// Hash seed; two estimators with the same seed are deterministic
    /// replicas.
    pub seed: u64,
    /// Width of the acceptance band in standard errors (`2.0` ≈ 95%).
    pub sigmas: f64,
}

impl HyperBallParams {
    /// Parameters with `2^precision` registers per node and default
    /// seed/band.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is outside `4..=12`.
    pub fn new(precision: u8) -> Self {
        assert!(
            (4..=12).contains(&precision),
            "precision must be in 4..=12, got {precision}"
        );
        HyperBallParams {
            precision,
            seed: 0x9e37_79b9_7f4a_7c15,
            sigmas: 2.0,
        }
    }

    /// Number of registers per node.
    pub fn registers(&self) -> usize {
        1 << self.precision
    }

    /// The HyperLogLog relative standard error, `1.04 / √(2^p)`.
    pub fn rel_std_error(&self) -> f64 {
        1.04 / (self.registers() as f64).sqrt()
    }

    /// Relative half-width of the acceptance band:
    /// `sigmas · rel_std_error`.
    pub fn error_band(&self) -> f64 {
        self.sigmas * self.rel_std_error()
    }
}

impl Default for HyperBallParams {
    /// `p = 6` (64 registers, ≈13% standard error, 64 bytes per node)
    /// with a 2σ acceptance band — the validation-tier sweet spot.
    fn default() -> Self {
        HyperBallParams::new(6)
    }
}

/// What a [`HyperBall`] sweep learned, over the nodes that seeded it.
///
/// Distance-valued fields are one-sided: they never exceed the exact
/// quantity (see the module docs). Count-valued fields carry the usual
/// HyperLogLog error ([`HyperBallParams::rel_std_error`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperBallSummary {
    /// Nodes the sweep iterated over (the view size).
    pub participants: usize,
    /// Seeds that were inside the view.
    pub seeds: usize,
    /// Rounds until every sketch stabilized.
    pub iterations: u32,
    /// `max_s last_change(s)` over seeds: a lower bound on the largest
    /// seed-to-seed distance (the diameter when every node seeds).
    pub seed_diameter_est: u32,
    /// `min_s last_change(s)` over seeds: a lower bound on the smallest
    /// seed eccentricity (the radius when every node seeds).
    pub seed_radius_est: u32,
    /// Smallest final count estimate over the seeds.
    pub min_seed_count: f64,
    /// Largest final count estimate over the seeds.
    pub max_seed_count: f64,
}

impl HyperBallSummary {
    const EMPTY: HyperBallSummary = HyperBallSummary {
        participants: 0,
        seeds: 0,
        iterations: 0,
        seed_diameter_est: 0,
        seed_radius_est: 0,
        min_seed_count: 0.0,
        max_seed_count: 0.0,
    };
}

/// A reusable HyperBall estimator: all register and scratch buffers are
/// kept across sweeps, so amortized sweeps allocate nothing.
#[derive(Debug, Clone)]
pub struct HyperBall {
    params: HyperBallParams,
    /// `words_per_node` u64 words per node, 8 registers per word.
    regs: Vec<u64>,
    /// Double buffer for the synchronous round update.
    pending: Vec<u64>,
    /// Last round in which the node's sketch changed.
    last_change: Vec<u32>,
    /// Changed in the previous round / in the round being built.
    changed: Vec<bool>,
    changed_next: Vec<bool>,
    /// Nodes touched by the current sweep (cleanup list).
    participants: Vec<NodeId>,
}

impl HyperBall {
    /// An estimator with the given parameters and empty buffers.
    ///
    /// # Panics
    ///
    /// Panics if `params.precision` is outside `4..=12` (the fields are
    /// public, so a struct literal can bypass [`HyperBallParams::new`]).
    pub fn new(params: HyperBallParams) -> Self {
        assert!(
            (4..=12).contains(&params.precision),
            "precision must be in 4..=12, got {}",
            params.precision
        );
        HyperBall {
            params,
            regs: Vec::new(),
            pending: Vec::new(),
            last_change: Vec::new(),
            changed: Vec::new(),
            changed_next: Vec::new(),
            participants: Vec::new(),
        }
    }

    /// The estimator's parameters.
    pub fn params(&self) -> &HyperBallParams {
        &self.params
    }

    fn words_per_node(&self) -> usize {
        self.params.registers() / 8
    }

    /// Sweeps `view` with **every node seeding itself**: count estimates
    /// approximate ball sizes inside the view, and
    /// [`seed_diameter_est`](HyperBallSummary::seed_diameter_est) is a
    /// one-sided estimate of the view's diameter (per component: the
    /// largest finite pairwise distance).
    pub fn sweep<A: Adjacency>(&mut self, view: &A) -> HyperBallSummary {
        self.sweep_core(view, None, &Deadline::unarmed())
            .expect("unarmed deadline never cancels")
    }

    /// Sweeps `view` with only `seeds` seeding: count estimates
    /// approximate `|B_t(v) ∩ seeds|`, and the summary's distance fields
    /// bound the seed-to-seed metric — the weak-diameter side when
    /// `view` is the full graph and `seeds` a cluster.
    pub fn sweep_seeded<A: Adjacency>(&mut self, view: &A, seeds: &NodeSet) -> HyperBallSummary {
        self.sweep_core(view, Some(seeds), &Deadline::unarmed())
            .expect("unarmed deadline never cancels")
    }

    /// [`sweep`](Self::sweep) honoring an armed [`Deadline`] once per
    /// synchronous round (= BFS layer), so abort latency is bounded by a
    /// single layer even when one sweep spans the whole view. On
    /// cancellation the estimator's buffers are cleaned up exactly as on
    /// completion — the instance stays reusable.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the deadline trips at a round boundary.
    pub fn sweep_in<A: Adjacency>(
        &mut self,
        view: &A,
        deadline: &Deadline,
    ) -> Result<HyperBallSummary, Cancelled> {
        self.sweep_core(view, None, deadline)
    }

    /// [`sweep_seeded`](Self::sweep_seeded) honoring an armed
    /// [`Deadline`] once per synchronous round; see
    /// [`sweep_in`](Self::sweep_in).
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the deadline trips at a round boundary.
    pub fn sweep_seeded_in<A: Adjacency>(
        &mut self,
        view: &A,
        seeds: &NodeSet,
        deadline: &Deadline,
    ) -> Result<HyperBallSummary, Cancelled> {
        self.sweep_core(view, Some(seeds), deadline)
    }

    fn sweep_core<A: Adjacency>(
        &mut self,
        view: &A,
        seeds: Option<&NodeSet>,
        deadline: &Deadline,
    ) -> Result<HyperBallSummary, Cancelled> {
        let wpn = self.words_per_node();
        let need = view.universe() * wpn;
        if self.regs.len() < need {
            self.regs.resize(need, 0);
            self.pending.resize(need, 0);
        }
        if self.last_change.len() < view.universe() {
            self.last_change.resize(view.universe(), 0);
            self.changed.resize(view.universe(), false);
            self.changed_next.resize(view.universe(), false);
        }
        debug_assert!(self.participants.is_empty(), "previous sweep cleaned up");

        // Seed round 0.
        let mut n_seeds = 0usize;
        for v in view.nodes() {
            self.participants.push(v);
            let is_seed = seeds.is_none_or(|s| s.contains(v));
            if is_seed {
                n_seeds += 1;
                self.add_node_hash(v);
                self.changed[v.index()] = true;
            }
        }
        if self.participants.is_empty() {
            return Ok(HyperBallSummary::EMPTY);
        }

        // Synchronous rounds: merge neighbors' round-(t-1) sketches.
        let mut rounds = 0u32;
        let mut t = 1u32;
        loop {
            if let Err(c) = deadline.check("hyperball-round") {
                self.release_participants(wpn);
                return Err(c);
            }
            let mut any = false;
            for pi in 0..self.participants.len() {
                let v = self.participants[pi];
                let vi = v.index();
                let near_change =
                    self.changed[vi] || view.neighbors(v).any(|u| self.changed[u.index()]);
                if !near_change {
                    continue;
                }
                // merged = own ∪ neighbors (bytewise max), into `pending`.
                let base = vi * wpn;
                self.pending[base..base + wpn].copy_from_slice(&self.regs[base..base + wpn]);
                for u in view.neighbors(v) {
                    let ub = u.index() * wpn;
                    for w in 0..wpn {
                        self.pending[base + w] =
                            byte_max(self.pending[base + w], self.regs[ub + w]);
                    }
                }
                if self.pending[base..base + wpn] != self.regs[base..base + wpn] {
                    self.changed_next[vi] = true;
                    self.last_change[vi] = t;
                    any = true;
                }
            }
            if !any {
                break;
            }
            rounds = t;
            // Commit the round and roll the change marks.
            for pi in 0..self.participants.len() {
                let vi = self.participants[pi].index();
                self.changed[vi] = self.changed_next[vi];
                if self.changed_next[vi] {
                    let base = vi * wpn;
                    self.regs[base..base + wpn].copy_from_slice(&self.pending[base..base + wpn]);
                    self.changed_next[vi] = false;
                }
            }
            t += 1;
        }

        // Summarize over the seeds, then release the buffers.
        let mut summary = HyperBallSummary {
            participants: self.participants.len(),
            seeds: n_seeds,
            iterations: rounds,
            seed_diameter_est: 0,
            seed_radius_est: u32::MAX,
            min_seed_count: f64::INFINITY,
            max_seed_count: 0.0,
        };
        for pi in 0..self.participants.len() {
            let v = self.participants[pi];
            if !seeds.is_none_or(|s| s.contains(v)) {
                continue;
            }
            let vi = v.index();
            summary.seed_diameter_est = summary.seed_diameter_est.max(self.last_change[vi]);
            summary.seed_radius_est = summary.seed_radius_est.min(self.last_change[vi]);
            let est = self.estimate(v);
            summary.min_seed_count = summary.min_seed_count.min(est);
            summary.max_seed_count = summary.max_seed_count.max(est);
        }
        if n_seeds == 0 {
            summary.seed_radius_est = 0;
            summary.min_seed_count = 0.0;
        }

        self.release_participants(wpn);
        Ok(summary)
    }

    /// Per-participant cleanup: the next sweep starts from zeroed state
    /// without an `O(universe)` clear. Runs on completion *and* on
    /// mid-sweep cancellation.
    fn release_participants(&mut self, wpn: usize) {
        for pi in 0..self.participants.len() {
            let vi = self.participants[pi].index();
            let base = vi * wpn;
            self.regs[base..base + wpn].fill(0);
            self.pending[base..base + wpn].fill(0);
            self.last_change[vi] = 0;
            self.changed[vi] = false;
            self.changed_next[vi] = false;
        }
        self.participants.clear();
    }

    /// Folds `v` itself into `v`'s sketch (round-0 seeding).
    fn add_node_hash(&mut self, v: NodeId) {
        let p = self.params.precision as u32;
        let h = splitmix64(v.index() as u64 ^ self.params.seed);
        let j = (h >> (64 - p)) as usize;
        // Rank of the remaining 64-p bits: position of the highest set
        // bit, capped so an all-zero tail still fits 6 bits.
        let rank = ((h << p).leading_zeros() + 1).min(64 - p + 1) as u8;
        let wpn = self.words_per_node();
        let word = v.index() * wpn + j / 8;
        let shift = (j % 8) * 8;
        let cur = ((self.regs[word] >> shift) & 0xFF) as u8;
        if rank > cur {
            self.regs[word] = (self.regs[word] & !(0xFFu64 << shift)) | ((rank as u64) << shift);
        }
    }

    /// HyperLogLog count estimate from `v`'s current sketch, with the
    /// standard small-range (linear counting) correction.
    fn estimate(&self, v: NodeId) -> f64 {
        let m = self.params.registers();
        let wpn = self.words_per_node();
        let base = v.index() * wpn;
        let mut inv_sum = 0.0f64;
        let mut zeros = 0usize;
        for w in 0..wpn {
            let mut word = self.regs[base + w];
            for _ in 0..8 {
                let r = (word & 0xFF) as u32;
                word >>= 8;
                if r == 0 {
                    zeros += 1;
                }
                // r <= 61 for p >= 4, so the shift is in range.
                inv_sum += 1.0 / (1u64 << r) as f64;
            }
        }
        let mf = m as f64;
        let raw = alpha(m) * mf * mf / inv_sum;
        if raw <= 2.5 * mf && zeros > 0 {
            mf * (mf / zeros as f64).ln()
        } else {
            raw
        }
    }
}

/// The HyperLogLog bias-correction constant `α_m`.
fn alpha(m: usize) -> f64 {
    match m {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / m as f64),
    }
}

/// Bytewise `max` of two u64s (eight 6-bit registers at a time).
///
/// Valid for bytes `< 128`: setting the high bit of each byte of `a`
/// makes the per-byte subtraction borrow-free, so bit 7 of each byte of
/// `(a | H) - b` is 1 exactly when `a_byte >= b_byte`.
#[inline]
fn byte_max(a: u64, b: u64) -> u64 {
    const H: u64 = 0x8080_8080_8080_8080;
    debug_assert_eq!(a & H, 0, "registers are 6-bit");
    debug_assert_eq!(b & H, 0, "registers are 6-bit");
    let ge = ((((a | H) - b) & H) >> 7) * 0xFF;
    (a & ge) | (b & !ge)
}

/// SplitMix64: a full-period mixer with good avalanche behaviour.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{bfs, diameter_exact};
    use crate::gen;

    #[test]
    fn byte_max_is_bytewise() {
        let a = 0x0001_7f00_0a0b_0c0d;
        let b = 0x0100_007f_0d0c_0b0a;
        assert_eq!(byte_max(a, b), 0x0101_7f7f_0d0c_0c0d);
        assert_eq!(byte_max(0, 0), 0);
        assert_eq!(byte_max(a, a), a);
    }

    #[test]
    fn diameter_estimate_is_one_sided() {
        for (rows, cols) in [(4, 4), (6, 9), (1, 40)] {
            let g = gen::grid(rows, cols);
            let exact = diameter_exact(&g.full_view()).unwrap();
            let mut hb = HyperBall::new(HyperBallParams::new(6));
            let s = hb.sweep(&g.full_view());
            assert!(
                s.seed_diameter_est <= exact,
                "{rows}x{cols}: est {} > exact {exact}",
                s.seed_diameter_est
            );
            assert!(s.seed_radius_est <= s.seed_diameter_est);
            assert_eq!(s.participants, rows * cols);
            assert_eq!(s.seeds, rows * cols);
        }
    }

    #[test]
    fn counts_land_in_the_error_band() {
        // Deterministic given the seed; p = 8 keeps the band tight.
        let params = HyperBallParams::new(8);
        let mut hb = HyperBall::new(params);
        for n in [32usize, 100, 256] {
            let g = gen::complete(n);
            let s = hb.sweep(&g.full_view());
            // In a complete graph every sketch converges to the full set.
            for est in [s.min_seed_count, s.max_seed_count] {
                let rel = (est - n as f64).abs() / n as f64;
                assert!(
                    rel <= params.error_band(),
                    "n = {n}: estimate {est} off by {rel}, band {}",
                    params.error_band()
                );
            }
        }
    }

    #[test]
    fn seeded_sweep_bounds_the_weak_metric() {
        // Path 0-..-9; seeds {0, 9}: the largest seed-to-seed distance
        // is 9 and the sweep must not overshoot it.
        let g = gen::path(10);
        let seeds = crate::NodeSet::from_nodes(10, [NodeId::new(0), NodeId::new(9)]);
        let mut hb = HyperBall::new(HyperBallParams::new(6));
        let s = hb.sweep_seeded(&g.full_view(), &seeds);
        assert_eq!(s.seeds, 2);
        assert!(s.seed_diameter_est <= 9);
        // With only 2 seeds the sketches are collision-free: exact.
        assert_eq!(s.seed_diameter_est, 9);
    }

    #[test]
    fn sweep_state_does_not_leak_across_sweeps() {
        let g = gen::grid(5, 5);
        let mut hb = HyperBall::new(HyperBallParams::new(6));
        let a = hb.sweep(&g.full_view());
        let b = hb.sweep(&g.full_view());
        assert_eq!(a, b, "replayed sweep must be bit-identical");
        // A sweep over a sub-view after a full sweep sees clean state.
        let sub = crate::NodeSet::from_nodes(25, (0..5).map(NodeId::new));
        let s = hb.sweep(&g.view(&sub));
        assert_eq!(s.participants, 5);
        let exact_sub = bfs(&g.view(&sub), [NodeId::new(0)]).eccentricity().unwrap();
        assert!(s.seed_diameter_est <= exact_sub);
    }

    #[test]
    fn empty_and_seedless_views() {
        let g = gen::path(3);
        let empty = crate::NodeSet::empty(3);
        let mut hb = HyperBall::new(HyperBallParams::default());
        assert_eq!(hb.sweep(&g.view(&empty)), HyperBallSummary::EMPTY);
        let s = hb.sweep_seeded(&g.full_view(), &empty);
        assert_eq!(s.participants, 3);
        assert_eq!(s.seeds, 0);
        assert_eq!(s.seed_diameter_est, 0);
        assert_eq!(s.max_seed_count, 0.0);
    }

    #[test]
    #[should_panic(expected = "precision must be in 4..=12")]
    fn rejects_out_of_range_precision() {
        let _ = HyperBallParams::new(3);
    }
}
