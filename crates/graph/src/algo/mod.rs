//! Graph algorithms used by the decomposition stack.
//!
//! All traversals are generic over [`Adjacency`](crate::Adjacency) so they
//! run unchanged on whole graphs and on induced alive-set views `G[S]`.

mod bfs;
mod components;
mod delta_stepping;
mod dfs;
mod distance;
mod hyperball;
mod induced;
mod msbfs;
mod oracle;
mod power;
mod weighted;
mod workspace;

pub use bfs::{bfs, bfs_bounded, BfsResult, UNREACHED};
pub use components::{component_of, connected_components, is_connected, Components};
pub use delta_stepping::{
    auto_delta, delta_stepping, delta_stepping_bounded_in, delta_stepping_in, delta_stepping_to_in,
    DeltaSteppingOracle, DELTA_SPREAD_LIMIT,
};
pub use dfs::{children_csr, dfs_order_of_tree, TreeOrder};
pub use distance::{
    diameter_exact, diameter_exact_in, diameter_two_sweep, diameter_two_sweep_in,
    eccentricities_in, eccentricity, eccentricity_in, pairwise_distances, pairwise_distances_in,
};
pub use hyperball::{HyperBall, HyperBallParams, HyperBallSummary};
pub use induced::{induced_subgraph, InducedSubgraph};
pub use msbfs::{
    ms_batch_order_in, msbfs_bounded_in, msbfs_in, msbfs_sets_bounded_in, msbfs_to_in, MsBfsRun,
    MS_LANES,
};
pub use oracle::{
    oracle_for, DistanceMap, DistanceMapIn, DistanceOracle, HopOracle, MetricOracle,
    WeightedOracle, ORACLE_UNREACHED,
};
pub use power::{graph_power, power_graph};
pub use weighted::{
    bellman_ford, dijkstra, dijkstra_bounded, weighted_diameter_exact, weighted_eccentricity,
    weighted_pairwise_distances, DijkstraResult, W_UNREACHED,
};
pub use workspace::{
    bfs_bounded_in, bfs_in, bfs_to_in, dijkstra_bounded_in, dijkstra_in, dijkstra_to_in, BfsRun,
    HopParts, SpParts, SpRun, TraversalWorkspace, MAX_HOP_DIST,
};
