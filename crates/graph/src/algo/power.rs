//! Power graphs `G^k`.
//!
//! The ABCP96 transformation (and many classic network-decomposition
//! constructions) run a decomposition algorithm on the power graph
//! `G^{2d}`, in which any two nodes at distance at most `2d` in `G` become
//! adjacent. Simulating one round on `G^k` costs `k` rounds on `G` (and, in
//! CONGEST, blows up message sizes — which is exactly the point of the
//! paper's comparison).

use crate::algo::{bfs_bounded, dijkstra};
use crate::{Adjacency, Graph};

/// Builds the `k`-th power of `view`: nodes are the alive nodes of the
/// view (in the same index space), and `{u, v}` is an edge iff
/// `dist_view(u, v) <= k` and `u != v` (hop distance — powers are a
/// LOCAL-model construct, so adjacency is always decided in hops).
///
/// On a weighted base graph the power is weighted too: each power edge
/// `{u, v}` carries the *weighted* shortest-path distance between `u`
/// and `v` in the view, so weighted metrics contract consistently with
/// the topology.
///
/// Cost is one truncated BFS per node (plus one Dijkstra per node when
/// weighted), `O(n · m_k)` where `m_k` is the size of the explored
/// balls; fine for the moderate instance sizes the LOCAL baseline is
/// evaluated on.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn power_graph<A: Adjacency>(view: &A, k: u32) -> Graph {
    assert!(k > 0, "power k must be positive");
    let n = view.universe();
    let mut builder = Graph::builder(n);
    let weighted = view.is_weighted();
    if weighted {
        builder.weighted();
    }
    for v in view.nodes() {
        let r = bfs_bounded(view, [v], k);
        let wdist = weighted.then(|| dijkstra(view, [v]));
        for u in r.order() {
            if u.index() > v.index() {
                match &wdist {
                    Some(d) => builder.weighted_edge(v.index(), u.index(), d.dist(*u)),
                    None => builder.edge(v.index(), u.index()),
                };
            }
        }
    }
    builder
        .build()
        .expect("power graph construction cannot fail")
}

/// Convenience: the `k`-th power of a whole graph, preserving identifiers.
pub fn graph_power(g: &Graph, k: u32) -> Graph {
    let ids: Vec<u64> = g.nodes().map(|v| g.id_of(v)).collect();
    power_graph(&g.full_view(), k)
        .with_ids(ids)
        .expect("id assignment preserved from a valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{algo, gen, NodeId, NodeSet};

    #[test]
    fn path_square() {
        let g = gen::path(5);
        let g2 = power_graph(&g.full_view(), 2);
        assert!(g2.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(!g2.has_edge(NodeId::new(0), NodeId::new(3)));
        assert_eq!(g2.m(), 4 + 3); // distance-1 plus distance-2 pairs
    }

    #[test]
    fn power_one_is_identity() {
        let g = gen::grid(3, 4);
        let g1 = power_graph(&g.full_view(), 1);
        assert_eq!(g1.m(), g.m());
        for (u, v) in g.edges() {
            assert!(g1.has_edge(u, v));
        }
    }

    #[test]
    fn large_power_is_complete_per_component() {
        let g = gen::path(6);
        let gk = power_graph(&g.full_view(), 10);
        assert_eq!(gk.m(), 6 * 5 / 2);
    }

    #[test]
    fn respects_view_boundaries() {
        let g = gen::path(5);
        let alive = NodeSet::from_nodes(5, [0, 1, 3, 4].map(NodeId::new));
        let gk = power_graph(&g.view(&alive), 4);
        // 2 is dead, so {0,1} and {3,4} stay separate cliques.
        assert!(gk.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(gk.has_edge(NodeId::new(3), NodeId::new(4)));
        assert!(!gk.has_edge(NodeId::new(1), NodeId::new(3)));
    }

    #[test]
    fn weighted_power_carries_weighted_distances() {
        // 0 -3.0- 1 -0.5- 2 -0.5- 3, plus a heavy shortcut 0-2.
        let g = crate::Graph::from_weighted_edges(
            4,
            [(0, 1, 3.0), (1, 2, 0.5), (2, 3, 0.5), (0, 2, 9.0)],
        )
        .unwrap();
        let g2 = power_graph(&g.full_view(), 2);
        assert!(g2.is_weighted());
        // The 0-2 power edge carries the weighted distance (detour via 1
        // beats the direct weight-9 edge).
        assert_eq!(g2.edge_weight(NodeId::new(0), NodeId::new(2)), Some(3.5));
        assert_eq!(g2.edge_weight(NodeId::new(1), NodeId::new(3)), Some(1.0));
        // 0-3 is hop distance 2 via the shortcut, so it is a power edge —
        // weighted by the cheapest path 0-1-2-3.
        assert_eq!(g2.edge_weight(NodeId::new(0), NodeId::new(3)), Some(4.0));
        // Unweighted bases give unweighted powers.
        assert!(!power_graph(&gen::path(5).full_view(), 2).is_weighted());
    }

    #[test]
    fn power_distances_contract() {
        let g = gen::cycle(12);
        let g3 = graph_power(&g, 3);
        let d1 = algo::pairwise_distances(&g.full_view());
        let d3 = algo::pairwise_distances(&g3.full_view());
        for u in 0..12 {
            for v in 0..12 {
                if u != v {
                    assert_eq!(d3[u][v], d1[u][v].div_ceil(3), "pair ({u},{v})");
                }
            }
        }
    }
}
