//! Connected components of (induced views of) graphs.

use crate::{Adjacency, NodeId, NodeSet};
use std::collections::VecDeque;

/// The connected components of a view, labelled `0..count`.
#[derive(Debug, Clone)]
pub struct Components {
    label: Vec<u32>,
    sizes: Vec<usize>,
    universe: usize,
}

/// Label for nodes outside the view.
const NO_COMPONENT: u32 = u32::MAX;

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Component label of `v`, or `None` if `v` is not in the view.
    pub fn label(&self, v: NodeId) -> Option<usize> {
        match self.label[v.index()] {
            NO_COMPONENT => None,
            l => Some(l as usize),
        }
    }

    /// Size of component `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= count()`.
    pub fn size(&self, c: usize) -> usize {
        self.sizes[c]
    }

    /// Sizes of all components, indexed by label.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Size of the largest component (0 if there are none).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// The members of component `c` as a [`NodeSet`].
    pub fn members(&self, c: usize) -> NodeSet {
        assert!(c < self.count(), "component {c} out of range");
        NodeSet::from_nodes(
            self.universe,
            (0..self.universe)
                .filter(|&i| self.label[i] == c as u32)
                .map(NodeId::new),
        )
    }

    /// Splits the view into one [`NodeSet`] per component.
    pub fn into_sets(&self) -> Vec<NodeSet> {
        let mut sets: Vec<NodeSet> = (0..self.count())
            .map(|_| NodeSet::empty(self.universe))
            .collect();
        for i in 0..self.universe {
            let l = self.label[i];
            if l != NO_COMPONENT {
                sets[l as usize].insert(NodeId::new(i));
            }
        }
        sets
    }
}

/// Computes the connected components of `view`.
pub fn connected_components<A: Adjacency>(view: &A) -> Components {
    let n = view.universe();
    let mut label = vec![NO_COMPONENT; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();

    for s in view.nodes() {
        if label[s.index()] != NO_COMPONENT {
            continue;
        }
        let c = sizes.len() as u32;
        let mut size = 0usize;
        label[s.index()] = c;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for v in view.neighbors(u) {
                if label[v.index()] == NO_COMPONENT {
                    label[v.index()] = c;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }

    Components {
        label,
        sizes,
        universe: n,
    }
}

/// The component of `v` within `view`, as a [`NodeSet`].
///
/// Returns an empty set if `v` is not in the view.
pub fn component_of<A: Adjacency>(view: &A, v: NodeId) -> NodeSet {
    let mut set = NodeSet::empty(view.universe());
    if !view.contains(v) {
        return set;
    }
    let mut queue = VecDeque::new();
    set.insert(v);
    queue.push_back(v);
    while let Some(u) = queue.pop_front() {
        for w in view.neighbors(u) {
            if set.insert(w) {
                queue.push_back(w);
            }
        }
    }
    set
}

/// Whether the view is connected (the empty view counts as connected).
pub fn is_connected<A: Adjacency>(view: &A) -> bool {
    connected_components(view).count() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, Graph};

    #[test]
    fn single_component() {
        let g = gen::cycle(6);
        let c = connected_components(&g.full_view());
        assert_eq!(c.count(), 1);
        assert_eq!(c.size(0), 6);
        assert!(is_connected(&g.full_view()));
    }

    #[test]
    fn two_components() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3), (3, 4)]).unwrap();
        let c = connected_components(&g.full_view());
        assert_eq!(c.count(), 2);
        let mut sizes = c.sizes().to_vec();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3]);
        assert_eq!(c.largest(), 3);
        assert_eq!(c.label(NodeId::new(0)), c.label(NodeId::new(1)));
        assert_ne!(c.label(NodeId::new(1)), c.label(NodeId::new(2)));
    }

    #[test]
    fn view_splits_component() {
        let g = gen::path(5);
        let alive = NodeSet::from_nodes(5, [0, 1, 3, 4].map(NodeId::new));
        let v = g.view(&alive);
        let c = connected_components(&v);
        assert_eq!(c.count(), 2);
        assert_eq!(c.label(NodeId::new(2)), None);
        let sets = c.into_sets();
        assert_eq!(sets.len(), 2);
        assert_eq!(sets.iter().map(NodeSet::len).sum::<usize>(), 4);
    }

    #[test]
    fn component_of_respects_view() {
        let g = gen::path(5);
        let alive = NodeSet::from_nodes(5, [0, 1, 3, 4].map(NodeId::new));
        let v = g.view(&alive);
        let comp = component_of(&v, NodeId::new(0));
        assert_eq!(comp.len(), 2);
        assert!(comp.contains(NodeId::new(1)));
        assert!(!comp.contains(NodeId::new(3)));
        assert!(component_of(&v, NodeId::new(2)).is_empty());
    }

    #[test]
    fn members_round_trip() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let c = connected_components(&g.full_view());
        let all: usize = (0..c.count()).map(|i| c.members(i).len()).sum();
        assert_eq!(all, 4);
    }

    #[test]
    fn isolated_nodes_are_components() {
        let g = Graph::empty(3);
        let c = connected_components(&g.full_view());
        assert_eq!(c.count(), 3);
        assert_eq!(c.largest(), 1);
    }
}
