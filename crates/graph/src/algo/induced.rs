//! Materialized induced subgraphs with index mappings.

use crate::{Adjacency, Graph, NodeId};

/// A materialized induced subgraph, with the mapping between the original
/// and the compacted index spaces.
///
/// Views ([`crate::SubsetView`]) are preferred inside the algorithms; this
/// type exists for handing a self-contained subproblem to code that wants
/// a standalone [`Graph`] — for example recursive invocations with fresh
/// round ledgers, or exporting a carved cluster.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    graph: Graph,
    to_original: Vec<NodeId>,
}

impl InducedSubgraph {
    /// The compacted graph. Node `i` corresponds to
    /// [`to_original`](Self::to_original)`()[i]` in the source graph, and
    /// inherits its identifier.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes `self`, returning the compacted graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Mapping from compacted indices to original node ids.
    pub fn to_original(&self) -> &[NodeId] {
        &self.to_original
    }

    /// Maps a compacted node back to the original graph.
    pub fn original_of(&self, v: NodeId) -> NodeId {
        self.to_original[v.index()]
    }

    /// Maps an original node into the compacted index space, if present.
    pub fn compact_of(&self, original: NodeId) -> Option<NodeId> {
        self.to_original
            .binary_search(&original)
            .ok()
            .map(NodeId::new)
    }
}

/// Materializes the induced subgraph of `view`.
///
/// Node identifiers are inherited from the base graph, so symmetry
/// breaking behaves identically on the extracted instance. On weighted
/// base graphs the surviving edges keep their weights (and the extract
/// stays weighted even if no edge survives).
pub fn induced_subgraph<A: Adjacency>(view: &A) -> InducedSubgraph {
    let to_original: Vec<NodeId> = view.nodes().collect();
    debug_assert!(to_original.windows(2).all(|w| w[0] < w[1]));
    let mut compact = vec![u32::MAX; view.universe()];
    for (i, &v) in to_original.iter().enumerate() {
        compact[v.index()] = i as u32;
    }
    let weighted = view.is_weighted();
    let mut builder = Graph::builder(to_original.len());
    if weighted {
        // Weighted graphs with zero surviving edges must stay weighted.
        builder.weighted();
    }
    for &v in &to_original {
        for (u, w) in view.neighbors_weighted(v) {
            if v < u {
                let (cu, cv) = (compact[v.index()] as usize, compact[u.index()] as usize);
                if weighted {
                    builder.weighted_edge(cu, cv, w)
                } else {
                    builder.edge(cu, cv)
                };
            }
        }
    }
    let ids: Vec<u64> = to_original.iter().map(|&v| view.id_of(v)).collect();
    let graph = builder
        .build()
        .expect("induced subgraph construction cannot fail")
        .with_ids(ids)
        .expect("inherited ids remain unique");
    InducedSubgraph { graph, to_original }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, NodeSet};

    #[test]
    fn extracts_square_from_grid() {
        let g = gen::grid(3, 3);
        // Keep the top-left 2x2 square: indices 0,1,3,4.
        let alive = NodeSet::from_nodes(9, [0, 1, 3, 4].map(NodeId::new));
        let ind = induced_subgraph(&g.view(&alive));
        assert_eq!(ind.graph().n(), 4);
        assert_eq!(ind.graph().m(), 4);
        assert_eq!(ind.original_of(NodeId::new(0)), NodeId::new(0));
        assert_eq!(ind.original_of(NodeId::new(3)), NodeId::new(4));
        assert_eq!(ind.compact_of(NodeId::new(3)), Some(NodeId::new(2)));
        assert_eq!(ind.compact_of(NodeId::new(8)), None);
    }

    #[test]
    fn inherits_ids() {
        let g = gen::path(4).with_ids(vec![40, 30, 20, 10]).unwrap();
        let alive = NodeSet::from_nodes(4, [1, 2].map(NodeId::new));
        let ind = induced_subgraph(&g.view(&alive));
        assert_eq!(ind.graph().id_of(NodeId::new(0)), 30);
        assert_eq!(ind.graph().id_of(NodeId::new(1)), 20);
        assert_eq!(ind.graph().min_id_node(), Some(NodeId::new(1)));
    }

    #[test]
    fn propagates_weights() {
        let g = crate::Graph::from_weighted_edges(
            5,
            [(0, 1, 2.0), (1, 2, 0.5), (2, 3, 4.0), (3, 4, 1.0)],
        )
        .unwrap();
        let alive = NodeSet::from_nodes(5, [1, 2, 3].map(NodeId::new));
        let ind = induced_subgraph(&g.view(&alive));
        assert!(ind.graph().is_weighted());
        assert_eq!(
            ind.graph().edge_weight(NodeId::new(0), NodeId::new(1)),
            Some(0.5)
        );
        assert_eq!(
            ind.graph().edge_weight(NodeId::new(1), NodeId::new(2)),
            Some(4.0)
        );
        // An edgeless extract of a weighted graph stays weighted.
        let lonely = NodeSet::from_nodes(5, [0, 3].map(NodeId::new));
        assert!(induced_subgraph(&g.view(&lonely)).graph().is_weighted());
        // Unweighted extracts stay unweighted.
        let u = gen::path(4);
        let ua = NodeSet::from_nodes(4, [0, 1].map(NodeId::new));
        assert!(!induced_subgraph(&u.view(&ua)).graph().is_weighted());
    }

    #[test]
    fn full_view_round_trips() {
        let g = gen::cycle(7);
        let ind = induced_subgraph(&g.full_view());
        assert_eq!(ind.graph().n(), 7);
        assert_eq!(ind.graph().m(), 7);
    }
}
