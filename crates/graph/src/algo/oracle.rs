//! Distance oracles: one interface over hop-count BFS, weighted
//! Dijkstra, and bucketed Δ-stepping.
//!
//! The carving pipeline and the validators only ever ask one question of
//! a graph metric — "distances from this node, within this view" — so
//! they take it from a [`DistanceOracle`] instead of calling a concrete
//! traversal. [`HopOracle`] answers with BFS hop counts (the paper's
//! CONGEST metric, and the fast path for unweighted graphs);
//! [`WeightedOracle`] answers with Dijkstra over the edge weights;
//! [`DeltaSteppingOracle`](super::DeltaSteppingOracle) answers the same
//! weighted metric with distance buckets instead of a heap.
//! [`oracle_for`] picks the matching metric for a graph, which is how
//! the stack stays weight-generic with unweighted inputs bit-identical
//! to the pre-oracle code: hop distances are integers, exactly
//! representable as `f64`, and the hop oracle runs the very same BFS.
//! For weighted graphs it prefers Δ-stepping when the weight spread
//! permits ([`auto_delta`](super::auto_delta)); the Δ-stepping backend
//! is distance-identical to Dijkstra, so the choice only moves wall
//! clock, never output.

use crate::algo::delta_stepping::DeltaSteppingOracle;
use crate::algo::{
    bfs, bfs_in, bfs_to_in, dijkstra, dijkstra_in, dijkstra_to_in, msbfs_in, msbfs_to_in, BfsRun,
    MsBfsRun, SpRun, TraversalWorkspace, UNREACHED,
};
use crate::{Adjacency, Graph, NodeId, NodeSet};

/// Distance value for unreached nodes, shared by both metrics.
pub const ORACLE_UNREACHED: f64 = f64::INFINITY;

/// Per-node distances from a single source, in some metric.
///
/// Hop distances are integers embedded in `f64` (exact up to `2^53`), so
/// comparisons against integer bounds behave identically to the `u32`
/// BFS API.
#[derive(Debug, Clone)]
pub struct DistanceMap {
    dist: Vec<f64>,
    order: Vec<NodeId>,
}

impl DistanceMap {
    /// Assembles a map from a raw distance vector and the reached nodes
    /// sorted by non-decreasing distance.
    pub(crate) fn new(dist: Vec<f64>, order: Vec<NodeId>) -> Self {
        debug_assert!(order
            .windows(2)
            .all(|w| dist[w[0].index()] <= dist[w[1].index()]));
        DistanceMap { dist, order }
    }

    /// Distance to `v`, or [`ORACLE_UNREACHED`].
    #[inline]
    pub fn dist(&self, v: NodeId) -> f64 {
        self.dist[v.index()]
    }

    /// Whether `v` was reached.
    #[inline]
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v.index()] != ORACLE_UNREACHED
    }

    /// The reached nodes in non-decreasing distance order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of reached nodes.
    pub fn reached_count(&self) -> usize {
        self.order.len()
    }

    /// Largest distance reached (`None` if nothing was reached).
    pub fn eccentricity(&self) -> Option<f64> {
        self.order.last().map(|&v| self.dist(v))
    }

    /// Reached nodes with distance at most `r`, in visit order.
    pub fn ball(&self, r: f64) -> impl Iterator<Item = NodeId> + '_ {
        self.order
            .iter()
            .copied()
            .take_while(move |&v| self.dist(v) <= r)
    }

    /// Number of reached nodes with distance at most `r`.
    pub fn ball_count(&self, r: f64) -> usize {
        self.order.partition_point(|&v| self.dist(v) <= r)
    }
}

/// Borrowed distance map over a [`TraversalWorkspace`] run: the
/// allocation-free counterpart of [`DistanceMap`], produced by
/// [`DistanceOracle::distances_in`].
#[derive(Clone, Copy)]
pub enum DistanceMapIn<'w> {
    /// Backed by a hop BFS run.
    Hop(BfsRun<'w>),
    /// Backed by a weighted (Dijkstra) run.
    Weighted(SpRun<'w>),
}

impl DistanceMapIn<'_> {
    /// Distance to `v`, or [`ORACLE_UNREACHED`].
    #[inline]
    pub fn dist(&self, v: NodeId) -> f64 {
        match self {
            DistanceMapIn::Hop(r) => {
                let d = r.dist(v);
                if d == UNREACHED {
                    ORACLE_UNREACHED
                } else {
                    d as f64
                }
            }
            DistanceMapIn::Weighted(r) => r.dist(v),
        }
    }

    /// Whether `v` was reached.
    #[inline]
    pub fn reached(&self, v: NodeId) -> bool {
        match self {
            DistanceMapIn::Hop(r) => r.reached(v),
            DistanceMapIn::Weighted(r) => r.reached(v),
        }
    }

    /// The reached nodes in non-decreasing distance order.
    pub fn order(&self) -> &[NodeId] {
        match self {
            DistanceMapIn::Hop(r) => r.order(),
            DistanceMapIn::Weighted(r) => r.order(),
        }
    }

    /// Number of reached nodes.
    pub fn reached_count(&self) -> usize {
        self.order().len()
    }

    /// Largest distance reached (`None` if nothing was reached).
    pub fn eccentricity(&self) -> Option<f64> {
        self.order().last().map(|&v| self.dist(v))
    }

    /// Number of reached nodes with distance at most `r`.
    pub fn ball_count(&self, r: f64) -> usize {
        self.order().partition_point(|&v| self.dist(v) <= r)
    }
}

/// A single-source distance computation over a view, in a fixed metric.
pub trait DistanceOracle {
    /// Distances from `source` within `view` (unreached nodes carry
    /// [`ORACLE_UNREACHED`]).
    fn distances<A: Adjacency>(&self, view: &A, source: NodeId) -> DistanceMap;

    /// [`distances`](Self::distances) into a caller-held workspace: no
    /// per-call allocation, value-identical distances.
    fn distances_in<'w, A: Adjacency>(
        &self,
        view: &A,
        source: NodeId,
        ws: &'w mut TraversalWorkspace,
    ) -> DistanceMapIn<'w>;

    /// Like [`distances_in`](Self::distances_in), but the sweep may stop
    /// as soon as every member of `targets` is reached — only target
    /// distances are guaranteed final. Used by the early-terminating
    /// weak-diameter validators.
    fn distances_to_in<'w, A: Adjacency>(
        &self,
        view: &A,
        source: NodeId,
        targets: &NodeSet,
        ws: &'w mut TraversalWorkspace,
    ) -> DistanceMapIn<'w>;

    /// Batched counterpart of [`distances_in`](Self::distances_in): up
    /// to [`crate::algo::MS_LANES`] sources swept in one bit-parallel
    /// MS-BFS pass, lane `l` seeded from `sources[l]`.
    ///
    /// Returns `None` when the metric has no batched backend — the
    /// weighted and Δ-stepping oracles order their relaxations by `f64`
    /// distance, which does not decompose into shared lane-word levels,
    /// so weighted consumers fall back to per-source sweeps. Callers
    /// must treat `None` as "run [`distances_in`](Self::distances_in)
    /// per source", which is value-identical.
    fn batch_distances_in<'w, A: Adjacency>(
        &self,
        _view: &A,
        _sources: &[NodeId],
        _ws: &'w mut TraversalWorkspace,
    ) -> Option<MsBfsRun<'w>> {
        None
    }

    /// Batched counterpart of
    /// [`distances_to_in`](Self::distances_to_in): each lane stops as
    /// soon as *its* sweep has reached every member of `targets`
    /// (per-lane remaining-targets counts); only target distances are
    /// guaranteed final per lane. `None` means "no batched backend",
    /// as for [`batch_distances_in`](Self::batch_distances_in).
    fn batch_distances_to_in<'w, A: Adjacency>(
        &self,
        _view: &A,
        _sources: &[NodeId],
        _targets: &NodeSet,
        _ws: &'w mut TraversalWorkspace,
    ) -> Option<MsBfsRun<'w>> {
        None
    }

    /// Whether this oracle measures edge weights (as opposed to hops).
    fn is_weighted_metric(&self) -> bool;

    /// Short metric name for diagnostics (`"hop"` / `"weighted"`).
    fn name(&self) -> &'static str;
}

/// Hop-count metric: BFS layers, every edge length 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HopOracle;

impl DistanceOracle for HopOracle {
    fn distances<A: Adjacency>(&self, view: &A, source: NodeId) -> DistanceMap {
        let r = bfs(view, [source]);
        let dist = (0..view.universe())
            .map(|i| {
                let d = r.dist(NodeId::new(i));
                if d == crate::algo::UNREACHED {
                    ORACLE_UNREACHED
                } else {
                    d as f64
                }
            })
            .collect();
        DistanceMap::new(dist, r.order().to_vec())
    }

    fn distances_in<'w, A: Adjacency>(
        &self,
        view: &A,
        source: NodeId,
        ws: &'w mut TraversalWorkspace,
    ) -> DistanceMapIn<'w> {
        DistanceMapIn::Hop(bfs_in(ws, view, [source]))
    }

    fn distances_to_in<'w, A: Adjacency>(
        &self,
        view: &A,
        source: NodeId,
        targets: &NodeSet,
        ws: &'w mut TraversalWorkspace,
    ) -> DistanceMapIn<'w> {
        DistanceMapIn::Hop(bfs_to_in(ws, view, [source], targets))
    }

    fn batch_distances_in<'w, A: Adjacency>(
        &self,
        view: &A,
        sources: &[NodeId],
        ws: &'w mut TraversalWorkspace,
    ) -> Option<MsBfsRun<'w>> {
        Some(msbfs_in(ws, view, sources))
    }

    fn batch_distances_to_in<'w, A: Adjacency>(
        &self,
        view: &A,
        sources: &[NodeId],
        targets: &NodeSet,
        ws: &'w mut TraversalWorkspace,
    ) -> Option<MsBfsRun<'w>> {
        Some(msbfs_to_in(ws, view, sources, targets))
    }

    fn is_weighted_metric(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "hop"
    }
}

/// Weighted metric: Dijkstra over the base graph's edge weights.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WeightedOracle;

impl DistanceOracle for WeightedOracle {
    fn distances<A: Adjacency>(&self, view: &A, source: NodeId) -> DistanceMap {
        let r = dijkstra(view, [source]);
        let dist = (0..view.universe())
            .map(|i| r.dist(NodeId::new(i)))
            .collect();
        DistanceMap::new(dist, r.order().to_vec())
    }

    fn distances_in<'w, A: Adjacency>(
        &self,
        view: &A,
        source: NodeId,
        ws: &'w mut TraversalWorkspace,
    ) -> DistanceMapIn<'w> {
        DistanceMapIn::Weighted(dijkstra_in(ws, view, [source]))
    }

    fn distances_to_in<'w, A: Adjacency>(
        &self,
        view: &A,
        source: NodeId,
        targets: &NodeSet,
        ws: &'w mut TraversalWorkspace,
    ) -> DistanceMapIn<'w> {
        DistanceMapIn::Weighted(dijkstra_to_in(ws, view, [source], targets))
    }

    fn is_weighted_metric(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "weighted"
    }
}

/// The metric matching a graph: a weighted backend (Δ-stepping or
/// Dijkstra — distance-identical, see
/// [`delta_stepping`](super::delta_stepping)) for weighted graphs,
/// [`HopOracle`] otherwise.
///
/// Not `Eq`: the Δ-stepping variant carries its `f64` bucket width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricOracle {
    /// Hop counts (unweighted graphs).
    Hop(HopOracle),
    /// Edge weights via Dijkstra (weighted graphs, unbounded spread).
    Weighted(WeightedOracle),
    /// Edge weights via bucketed Δ-stepping (weighted graphs with
    /// bounded weight spread). Same distances as
    /// [`MetricOracle::Weighted`], different engine.
    Delta(DeltaSteppingOracle),
}

impl DistanceOracle for MetricOracle {
    fn distances<A: Adjacency>(&self, view: &A, source: NodeId) -> DistanceMap {
        match self {
            MetricOracle::Hop(o) => o.distances(view, source),
            MetricOracle::Weighted(o) => o.distances(view, source),
            MetricOracle::Delta(o) => o.distances(view, source),
        }
    }

    fn distances_in<'w, A: Adjacency>(
        &self,
        view: &A,
        source: NodeId,
        ws: &'w mut TraversalWorkspace,
    ) -> DistanceMapIn<'w> {
        match self {
            MetricOracle::Hop(o) => o.distances_in(view, source, ws),
            MetricOracle::Weighted(o) => o.distances_in(view, source, ws),
            MetricOracle::Delta(o) => o.distances_in(view, source, ws),
        }
    }

    fn distances_to_in<'w, A: Adjacency>(
        &self,
        view: &A,
        source: NodeId,
        targets: &NodeSet,
        ws: &'w mut TraversalWorkspace,
    ) -> DistanceMapIn<'w> {
        match self {
            MetricOracle::Hop(o) => o.distances_to_in(view, source, targets, ws),
            MetricOracle::Weighted(o) => o.distances_to_in(view, source, targets, ws),
            MetricOracle::Delta(o) => o.distances_to_in(view, source, targets, ws),
        }
    }

    fn batch_distances_in<'w, A: Adjacency>(
        &self,
        view: &A,
        sources: &[NodeId],
        ws: &'w mut TraversalWorkspace,
    ) -> Option<MsBfsRun<'w>> {
        match self {
            MetricOracle::Hop(o) => o.batch_distances_in(view, sources, ws),
            MetricOracle::Weighted(o) => o.batch_distances_in(view, sources, ws),
            MetricOracle::Delta(o) => o.batch_distances_in(view, sources, ws),
        }
    }

    fn batch_distances_to_in<'w, A: Adjacency>(
        &self,
        view: &A,
        sources: &[NodeId],
        targets: &NodeSet,
        ws: &'w mut TraversalWorkspace,
    ) -> Option<MsBfsRun<'w>> {
        match self {
            MetricOracle::Hop(o) => o.batch_distances_to_in(view, sources, targets, ws),
            MetricOracle::Weighted(o) => o.batch_distances_to_in(view, sources, targets, ws),
            MetricOracle::Delta(o) => o.batch_distances_to_in(view, sources, targets, ws),
        }
    }

    fn is_weighted_metric(&self) -> bool {
        !matches!(self, MetricOracle::Hop(_))
    }

    fn name(&self) -> &'static str {
        match self {
            MetricOracle::Hop(o) => o.name(),
            MetricOracle::Weighted(o) => o.name(),
            MetricOracle::Delta(o) => o.name(),
        }
    }
}

/// Picks the natural metric for `g`: the hop metric for unweighted
/// graphs; for weighted graphs, bucketed Δ-stepping when the weight
/// spread permits ([`super::auto_delta`]), falling back to Dijkstra
/// otherwise. Both weighted backends produce bit-identical distances,
/// so the selection never changes pipeline output.
pub fn oracle_for(g: &Graph) -> MetricOracle {
    if !g.is_weighted() {
        MetricOracle::Hop(HopOracle)
    } else if let Some(o) = DeltaSteppingOracle::for_graph(g) {
        MetricOracle::Delta(o)
    } else {
        MetricOracle::Weighted(WeightedOracle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, Graph};

    #[test]
    fn hop_oracle_matches_bfs() {
        let g = gen::grid(4, 5);
        let m = HopOracle.distances(&g.full_view(), NodeId::new(0));
        let b = bfs(&g.full_view(), [NodeId::new(0)]);
        for v in g.nodes() {
            assert_eq!(m.dist(v), b.dist(v) as f64);
        }
        assert_eq!(m.eccentricity(), Some(7.0));
        assert_eq!(m.ball_count(2.0), b.ball(2).count());
    }

    #[test]
    fn weighted_oracle_uses_weights() {
        let g = Graph::from_weighted_edges(3, [(0, 1, 2.5), (1, 2, 0.25)]).unwrap();
        let m = WeightedOracle.distances(&g.full_view(), NodeId::new(0));
        assert_eq!(m.dist(NodeId::new(2)), 2.75);
        assert!(WeightedOracle.is_weighted_metric());
    }

    #[test]
    fn auto_selection() {
        let unweighted = gen::path(4);
        assert_eq!(oracle_for(&unweighted), MetricOracle::Hop(HopOracle));
        assert_eq!(oracle_for(&unweighted).name(), "hop");
        // Bounded weight spread: the bucketed backend is preferred.
        let weighted = Graph::from_weighted_edges(4, [(0, 1, 2.0)]).unwrap();
        assert!(oracle_for(&weighted).is_weighted_metric());
        assert_eq!(oracle_for(&weighted).name(), "delta");
        // Wild spread: fall back to the heap.
        let wild = Graph::from_weighted_edges(3, [(0, 1, 1e-9), (1, 2, 1e9)]).unwrap();
        assert!(oracle_for(&wild).is_weighted_metric());
        assert_eq!(oracle_for(&wild).name(), "weighted");
    }

    #[test]
    fn delta_variant_matches_weighted_variant() {
        let g = gen::gnp(30, 0.12, 9);
        let w = Graph::from_weighted_edges(30, g.edges().map(|(u, v)| (u.index(), v.index(), 1.5)))
            .unwrap();
        let auto = oracle_for(&w);
        assert_eq!(auto.name(), "delta");
        let a = auto.distances(&w.full_view(), NodeId::new(0));
        let b = WeightedOracle.distances(&w.full_view(), NodeId::new(0));
        for v in w.nodes() {
            assert_eq!(a.dist(v), b.dist(v), "node {v}");
        }
    }

    #[test]
    fn metrics_agree_on_unit_weights() {
        let base = gen::gnp(25, 0.15, 3);
        let unit =
            Graph::from_weighted_edges(25, base.edges().map(|(u, v)| (u.index(), v.index(), 1.0)))
                .unwrap();
        let hop = HopOracle.distances(&base.full_view(), NodeId::new(0));
        let w = WeightedOracle.distances(&unit.full_view(), NodeId::new(0));
        for v in base.nodes() {
            assert_eq!(hop.dist(v), w.dist(v), "node {v}");
        }
    }
}
