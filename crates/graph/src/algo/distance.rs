//! Eccentricity, diameter, and pairwise distances.

use crate::algo::{bfs, UNREACHED};
use crate::{Adjacency, NodeId};

/// Eccentricity of `v` within its component of `view` (max BFS distance).
///
/// Returns `None` if `v` is not in the view.
pub fn eccentricity<A: Adjacency>(view: &A, v: NodeId) -> Option<u32> {
    if !view.contains(v) {
        return None;
    }
    bfs(view, [v]).eccentricity()
}

/// Exact diameter of `view` via an all-pairs sweep of BFS runs.
///
/// Cost is `O(n · (n + m))`; intended for validation and for the modest
/// graph sizes of the experiment suite, not for huge inputs.
///
/// Returns `None` for an empty view and [`UNREACHED`]-free semantics
/// otherwise: if the view is disconnected, the diameter of the *largest
/// distance within any single component* is returned (distances across
/// components are ignored).
pub fn diameter_exact<A: Adjacency>(view: &A) -> Option<u32> {
    let mut best: Option<u32> = None;
    for v in view.nodes() {
        let e = bfs(view, [v]).eccentricity()?;
        best = Some(best.map_or(e, |b| b.max(e)));
    }
    best
}

/// Two-sweep lower bound on the diameter: BFS from an arbitrary node, then
/// BFS from the farthest node found. Exact on trees; a lower bound in
/// general, and a widely used estimator.
///
/// Returns `None` for an empty view.
pub fn diameter_two_sweep<A: Adjacency>(view: &A) -> Option<u32> {
    let start = view.nodes().next()?;
    let first = bfs(view, [start]);
    let far = *first.order().last()?;
    bfs(view, [far]).eccentricity()
}

/// All-pairs distances (only for small graphs; `O(n^2)` memory).
///
/// `result[u][v]` is the distance from `u` to `v`, or [`UNREACHED`] when
/// `v` is unreachable from `u` or either endpoint is outside the view.
pub fn pairwise_distances<A: Adjacency>(view: &A) -> Vec<Vec<u32>> {
    let n = view.universe();
    let mut out = vec![vec![UNREACHED; n]; n];
    for v in view.nodes() {
        let r = bfs(view, [v]);
        for u in view.nodes() {
            out[v.index()][u.index()] = r.dist(u);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, Graph, NodeSet};

    #[test]
    fn path_diameter() {
        let g = gen::path(9);
        assert_eq!(diameter_exact(&g.full_view()), Some(8));
        assert_eq!(diameter_two_sweep(&g.full_view()), Some(8));
    }

    #[test]
    fn cycle_diameter() {
        let g = gen::cycle(10);
        assert_eq!(diameter_exact(&g.full_view()), Some(5));
    }

    #[test]
    fn grid_diameter() {
        let g = gen::grid(4, 7);
        assert_eq!(diameter_exact(&g.full_view()), Some(3 + 6));
    }

    #[test]
    fn eccentricity_center_vs_leaf() {
        let g = gen::path(9);
        assert_eq!(eccentricity(&g.full_view(), NodeId::new(4)), Some(4));
        assert_eq!(eccentricity(&g.full_view(), NodeId::new(0)), Some(8));
    }

    #[test]
    fn eccentricity_outside_view() {
        let g = gen::path(3);
        let alive = NodeSet::from_nodes(3, [0, 1].map(NodeId::new));
        assert_eq!(eccentricity(&g.view(&alive), NodeId::new(2)), None);
    }

    #[test]
    fn two_sweep_is_lower_bound() {
        let g = gen::gnp(60, 0.08, 7);
        let exact = diameter_exact(&g.full_view()).unwrap();
        let approx = diameter_two_sweep(&g.full_view()).unwrap();
        assert!(approx <= exact);
    }

    #[test]
    fn pairwise_matches_bfs() {
        let g = gen::grid(3, 3);
        let d = pairwise_distances(&g.full_view());
        assert_eq!(d[0][8], 4);
        assert_eq!(d[4][4], 0);
        for (u, row) in d.iter().enumerate() {
            for (v, &duv) in row.iter().enumerate() {
                assert_eq!(duv, d[v][u], "symmetry at ({u},{v})");
            }
        }
    }

    #[test]
    fn disconnected_diameter_is_within_components() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3), (3, 4)]).unwrap();
        assert_eq!(diameter_exact(&g.full_view()), Some(2));
    }

    #[test]
    fn empty_view() {
        let g = Graph::empty(0);
        assert_eq!(diameter_exact(&g.full_view()), None);
        assert_eq!(diameter_two_sweep(&g.full_view()), None);
    }
}
