//! Eccentricity, diameter, and pairwise distances.
//!
//! The all-pairs sweeps (`diameter_exact`, `pairwise_distances`, and the
//! batched eccentricity helper) run their sources through the
//! bit-parallel MS-BFS [`crate::algo::msbfs_in`] 64 lanes at a time, so
//! an `n`-source sweep costs `⌈n / 64⌉` shared adjacency passes instead
//! of `n`. Batches are composed by [`crate::algo::ms_batch_order_in`]
//! so the 64 lanes of each pass start near each other — without that,
//! 64 row-major-consecutive sources on a high-diameter graph string out
//! into a line and the shared frontier degenerates to per-source cost.
//! The `_in` variants reuse a caller-held [`TraversalWorkspace`]
//! (lane-word plus ordering scratch); the owning functions are thin
//! wrappers with a throwaway workspace.

use crate::algo::{bfs_in, ms_batch_order_in, msbfs_in, TraversalWorkspace, MS_LANES, UNREACHED};
use crate::{Adjacency, NodeId};

/// Eccentricity of `v` within its component of `view` (max BFS distance).
///
/// Returns `None` if `v` is not in the view.
pub fn eccentricity<A: Adjacency>(view: &A, v: NodeId) -> Option<u32> {
    eccentricity_in(view, v, &mut TraversalWorkspace::new())
}

/// [`eccentricity`] into a caller-held workspace.
pub fn eccentricity_in<A: Adjacency>(
    view: &A,
    v: NodeId,
    ws: &mut TraversalWorkspace,
) -> Option<u32> {
    if !view.contains(v) {
        return None;
    }
    bfs_in(ws, view, [v]).eccentricity()
}

/// Eccentricities of many sources in one batched sweep: `out[i]` is the
/// eccentricity of `sources[i]` (or `None` when that source is outside
/// the view), computed `MS_LANES` sources per shared MS-BFS pass.
pub fn eccentricities_in<A: Adjacency>(
    view: &A,
    sources: &[NodeId],
    ws: &mut TraversalWorkspace,
) -> Vec<Option<u32>> {
    // Pack locality-tight batches and scatter each lane's result back
    // to its source's input position.
    let order = ms_batch_order_in(ws, view, sources);
    let mut out = vec![None; sources.len()];
    let mut batch = [NodeId::new(0); MS_LANES];
    for chunk in order.chunks(MS_LANES) {
        for (i, &oi) in chunk.iter().enumerate() {
            batch[i] = sources[oi as usize];
        }
        let run = msbfs_in(ws, view, &batch[..chunk.len()]);
        for (lane, &oi) in chunk.iter().enumerate() {
            out[oi as usize] = run.eccentricity(lane);
        }
    }
    out
}

/// Exact diameter of `view` via an all-pairs sweep of BFS runs.
///
/// Cost is `O(⌈n/64⌉ · (n + m))` shared MS-BFS passes; intended for
/// validation and for the modest graph sizes of the experiment suite,
/// not for huge inputs.
///
/// Returns `None` for an empty view and [`UNREACHED`]-free semantics
/// otherwise: if the view is disconnected, the diameter of the *largest
/// distance within any single component* is returned (distances across
/// components are ignored).
pub fn diameter_exact<A: Adjacency>(view: &A) -> Option<u32> {
    diameter_exact_in(view, &mut TraversalWorkspace::new())
}

/// [`diameter_exact`] into a caller-held workspace: every 64-lane batch
/// reuses the same lane-word scratch, and batches are packed as BFS
/// balls so the shared frontier stays shared.
pub fn diameter_exact_in<A: Adjacency>(view: &A, ws: &mut TraversalWorkspace) -> Option<u32> {
    let sources: Vec<NodeId> = view.nodes().collect();
    let order = ms_batch_order_in(ws, view, &sources);
    let mut batch = [NodeId::new(0); MS_LANES];
    let mut best: Option<u32> = None;
    for chunk in order.chunks(MS_LANES) {
        for (i, &oi) in chunk.iter().enumerate() {
            batch[i] = sources[oi as usize];
        }
        let run = msbfs_in(ws, view, &batch[..chunk.len()]);
        for lane in 0..chunk.len() {
            // Every source is in the view, so its lane reached at least
            // itself and has an eccentricity.
            let e = run.eccentricity(lane).expect("in-view source lane");
            best = Some(best.map_or(e, |b| b.max(e)));
        }
    }
    best
}

/// Two-sweep lower bound on the diameter: BFS from an arbitrary node, then
/// BFS from the farthest node found. Exact on trees; a lower bound in
/// general, and a widely used estimator.
///
/// Returns `None` for an empty view.
pub fn diameter_two_sweep<A: Adjacency>(view: &A) -> Option<u32> {
    diameter_two_sweep_in(view, &mut TraversalWorkspace::new())
}

/// [`diameter_two_sweep`] into a caller-held workspace.
pub fn diameter_two_sweep_in<A: Adjacency>(view: &A, ws: &mut TraversalWorkspace) -> Option<u32> {
    let start = view.nodes().next()?;
    let far = {
        let first = bfs_in(ws, view, [start]);
        *first.order().last()?
    };
    bfs_in(ws, view, [far]).eccentricity()
}

/// All-pairs distances (only for small graphs; `O(n^2)` memory).
///
/// `result[u][v]` is the distance from `u` to `v`, or [`UNREACHED`] when
/// `v` is unreachable from `u` or either endpoint is outside the view.
pub fn pairwise_distances<A: Adjacency>(view: &A) -> Vec<Vec<u32>> {
    pairwise_distances_in(view, &mut TraversalWorkspace::new())
}

/// [`pairwise_distances`] into a caller-held workspace: sources run 64
/// lanes per shared MS-BFS pass and the per-call allocation is the
/// `O(n^2)` result matrix itself.
pub fn pairwise_distances_in<A: Adjacency>(view: &A, ws: &mut TraversalWorkspace) -> Vec<Vec<u32>> {
    let n = view.universe();
    let mut out = vec![vec![UNREACHED; n]; n];
    let sources: Vec<NodeId> = view.nodes().collect();
    let order = ms_batch_order_in(ws, view, &sources);
    let mut batch = [NodeId::new(0); MS_LANES];
    for chunk in order.chunks(MS_LANES) {
        for (i, &oi) in chunk.iter().enumerate() {
            batch[i] = sources[oi as usize];
        }
        let run = msbfs_in(ws, view, &batch[..chunk.len()]);
        for (lane, &oi) in chunk.iter().enumerate() {
            let row = &mut out[sources[oi as usize].index()];
            for &u in &sources {
                row[u.index()] = run.dist(u, lane);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, Graph, NodeSet};

    #[test]
    fn path_diameter() {
        let g = gen::path(9);
        assert_eq!(diameter_exact(&g.full_view()), Some(8));
        assert_eq!(diameter_two_sweep(&g.full_view()), Some(8));
    }

    #[test]
    fn cycle_diameter() {
        let g = gen::cycle(10);
        assert_eq!(diameter_exact(&g.full_view()), Some(5));
    }

    #[test]
    fn grid_diameter() {
        let g = gen::grid(4, 7);
        assert_eq!(diameter_exact(&g.full_view()), Some(3 + 6));
    }

    #[test]
    fn eccentricity_center_vs_leaf() {
        let g = gen::path(9);
        assert_eq!(eccentricity(&g.full_view(), NodeId::new(4)), Some(4));
        assert_eq!(eccentricity(&g.full_view(), NodeId::new(0)), Some(8));
    }

    #[test]
    fn eccentricity_outside_view() {
        let g = gen::path(3);
        let alive = NodeSet::from_nodes(3, [0, 1].map(NodeId::new));
        assert_eq!(eccentricity(&g.view(&alive), NodeId::new(2)), None);
    }

    #[test]
    fn batched_eccentricities_match_single_source() {
        let g = gen::gnp(90, 0.05, 13);
        let view = g.full_view();
        let mut ws = TraversalWorkspace::new();
        let sources: Vec<NodeId> = (0..90).map(NodeId::new).collect();
        let batched = eccentricities_in(&view, &sources, &mut ws);
        assert_eq!(batched.len(), 90);
        for (i, &e) in batched.iter().enumerate() {
            assert_eq!(e, eccentricity_in(&view, sources[i], &mut ws), "source {i}");
        }
    }

    #[test]
    fn two_sweep_is_lower_bound() {
        let g = gen::gnp(60, 0.08, 7);
        let exact = diameter_exact(&g.full_view()).unwrap();
        let approx = diameter_two_sweep(&g.full_view()).unwrap();
        assert!(approx <= exact);
    }

    #[test]
    fn pairwise_matches_bfs() {
        let g = gen::grid(3, 3);
        let d = pairwise_distances(&g.full_view());
        assert_eq!(d[0][8], 4);
        assert_eq!(d[4][4], 0);
        for (u, row) in d.iter().enumerate() {
            for (v, &duv) in row.iter().enumerate() {
                assert_eq!(duv, d[v][u], "symmetry at ({u},{v})");
            }
        }
    }

    #[test]
    fn pairwise_in_reuses_the_workspace_across_views() {
        let g = gen::grid(9, 9); // 81 nodes: one full batch plus a ragged one
        let mut ws = TraversalWorkspace::new();
        let full = pairwise_distances_in(&g.full_view(), &mut ws);
        assert_eq!(full, pairwise_distances(&g.full_view()));
        let alive = NodeSet::from_nodes(81, (0..81).filter(|&i| i % 5 != 2).map(NodeId::new));
        let sub = pairwise_distances_in(&g.view(&alive), &mut ws);
        assert_eq!(sub, pairwise_distances(&g.view(&alive)));
        for i in (0..81).filter(|&i| i % 5 == 2) {
            assert!(sub[i].iter().all(|&d| d == UNREACHED), "dead row {i}");
        }
    }

    #[test]
    fn disconnected_diameter_is_within_components() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3), (3, 4)]).unwrap();
        assert_eq!(diameter_exact(&g.full_view()), Some(2));
    }

    #[test]
    fn empty_view() {
        let g = Graph::empty(0);
        assert_eq!(diameter_exact(&g.full_view()), None);
        assert_eq!(diameter_two_sweep(&g.full_view()), None);
    }
}
