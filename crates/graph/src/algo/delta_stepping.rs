//! Bucketed Δ-stepping shortest paths (Meyer–Sanders).
//!
//! Δ-stepping partitions tentative distances into buckets of width `Δ`
//! and settles one bucket at a time: *light* edges (weight ≤ Δ) are
//! relaxed to a fixpoint inside the current bucket, then *heavy* edges
//! (weight > Δ) are relaxed once per settled node. With bounded weight
//! spread the bucket count per sweep stays small and the traversal
//! avoids the binary heap entirely — the sublinear-validation backend
//! the experiment harness uses on weighted graphs.
//!
//! The final distances are the unique fixpoint of the Bellman-style
//! relaxation equations (non-negative weights), so they are *bit
//! identical* to [`super::dijkstra`]'s: both algorithms evaluate the
//! same `dist(u) + w` sums and take the same minima. The published
//! visit order is sorted by `(distance bits, node index)`, which equals
//! Dijkstra's settle order, so every downstream consumer (ball counts,
//! eccentricities, the carving pipeline) sees identical outputs. The
//! test suite and `tests/approx_validation.rs` pin this equivalence
//! against both Dijkstra and Bellman–Ford.
//!
//! Buckets live in the [`TraversalWorkspace`]'s weighted arena
//! ([`SpParts::buckets`]), indexed cyclically: a relaxation from bucket
//! `i` lands in an absolute bucket `< i + ⌈w_max/Δ⌉ + 1`, so
//! `⌈w_max/Δ⌉ + 2` slots suffice and memory stays `O(w_max/Δ)`
//! regardless of how far the traversal runs.

use crate::{Adjacency, Graph, NodeId, NodeSet};

use super::oracle::{DistanceMap, DistanceMapIn, DistanceOracle};
use super::weighted::{DijkstraResult, W_UNREACHED};
use super::workspace::{SpParts, SpRun, TraversalWorkspace};

/// Sentinel for "no parent" in the packed parent arrays.
const NO_NODE: u32 = u32::MAX;

/// Upper bound on the weight spread (`w_max / w_min`) up to which
/// [`auto_delta`] considers bucketing effective; beyond it (or with
/// non-positive weights) [`super::oracle_for`] falls back to the binary
/// heap.
pub const DELTA_SPREAD_LIMIT: f64 = 1024.0;

/// Picks a bucket width for `g`: the classic `Δ = w_max / avg_degree`
/// choice, clamped below by the lightest edge so a single bucket never
/// splits an edge relaxation into many rounds.
///
/// Returns `None` when bucketing is not worthwhile: unweighted or
/// edgeless graphs, non-positive weights, or weight spread above
/// [`DELTA_SPREAD_LIMIT`] (where Δ-stepping degenerates toward
/// Bellman–Ford or Dijkstra and the heap is the better backend).
pub fn auto_delta(g: &Graph) -> Option<f64> {
    let weights = g.weights()?;
    if weights.is_empty() {
        return None;
    }
    let mut min_w = f64::INFINITY;
    let mut max_w = 0.0_f64;
    for &w in weights {
        min_w = min_w.min(w);
        max_w = max_w.max(w);
    }
    // Graph construction rejects non-finite or negative weights, so the
    // only degenerate case left is an exact zero.
    if min_w <= 0.0 || max_w / min_w > DELTA_SPREAD_LIMIT {
        return None;
    }
    let avg_degree = (2 * g.m()) as f64 / g.n().max(1) as f64;
    Some((max_w / avg_degree.max(1.0)).max(min_w))
}

/// Runs Δ-stepping from the given source set over `view` with bucket
/// width `delta`, using the base graph's edge weights.
///
/// Output-identical to [`super::dijkstra`] (see the module docs). Thin
/// wrapper over [`delta_stepping_in`] with a throwaway workspace.
///
/// # Panics
///
/// Panics if `delta` is not a finite positive number.
pub fn delta_stepping<A, I>(view: &A, sources: I, delta: f64) -> DijkstraResult
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    let mut ws = TraversalWorkspace::new();
    let run = delta_stepping_in(&mut ws, view, sources, delta);
    DijkstraResult::from_run(view.universe(), &run)
}

/// [`delta_stepping`] into a workspace: no per-call allocation once the
/// arena has grown, value-identical distances.
pub fn delta_stepping_in<'w, A, I>(
    ws: &'w mut TraversalWorkspace,
    view: &A,
    sources: I,
    delta: f64,
) -> SpRun<'w>
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    delta_core(ws, view, sources, delta, W_UNREACHED, None)
}

/// Δ-stepping truncated at distance `max_dist` (inclusive); the
/// bucketed sibling of [`super::dijkstra_bounded_in`].
pub fn delta_stepping_bounded_in<'w, A, I>(
    ws: &'w mut TraversalWorkspace,
    view: &A,
    sources: I,
    delta: f64,
    max_dist: f64,
) -> SpRun<'w>
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    delta_core(ws, view, sources, delta, max_dist, None)
}

/// Δ-stepping that stops once every member of `targets` has settled
/// (their bucket has been fully processed, so their distances are
/// final); the bucketed sibling of [`super::dijkstra_to_in`].
pub fn delta_stepping_to_in<'w, A, I>(
    ws: &'w mut TraversalWorkspace,
    view: &A,
    sources: I,
    delta: f64,
    targets: &NodeSet,
) -> SpRun<'w>
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    delta_core(ws, view, sources, delta, W_UNREACHED, Some(targets))
}

/// Relaxes `u` to candidate distance `cand` discovered from `from`,
/// filing it under its (cyclic) bucket slot. Returns whether an entry
/// was filed (the caller keeps the outstanding-entry count).
#[inline]
fn relax(
    p: &mut SpParts<'_>,
    slots: usize,
    delta: f64,
    max_dist: f64,
    u: NodeId,
    cand: f64,
    from: u32,
) -> bool {
    if cand <= max_dist && cand < p.dist_of(u) {
        // Stamp without recording in `order` (as in `dijkstra_core`):
        // the node enters `order` when it settles, not when it is filed.
        let ui = u.index();
        if p.stamp[ui] != p.epoch {
            p.stamp[ui] = p.epoch;
        }
        p.dist[ui] = cand;
        p.parent[ui] = from;
        let abs = (cand / delta) as usize;
        p.buckets[abs % slots].push(u);
        true
    } else {
        false
    }
}

fn delta_core<'w, A, I>(
    ws: &'w mut TraversalWorkspace,
    view: &A,
    sources: I,
    delta: f64,
    max_dist: f64,
    targets: Option<&NodeSet>,
) -> SpRun<'w>
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    assert!(
        delta.is_finite() && delta > 0.0,
        "delta must be a finite positive bucket width, got {delta}"
    );
    // A relaxation out of bucket `i` lands in an absolute bucket
    // `<= i + ceil(w_max / delta)`, so this many cyclic slots guarantee
    // an in-flight entry never collides with a future bucket.
    let w_max = view.graph().max_edge_weight().max(delta);
    let slots = (w_max / delta).ceil() as usize + 2;
    {
        let mut p = ws.begin_sp(view.universe());
        if p.buckets.len() < slots {
            p.buckets.resize_with(slots, Vec::new);
        }
        let mut remaining = targets.map_or(usize::MAX, NodeSet::len);
        let mut items = 0usize;
        for s in sources {
            if view.contains(s) && !p.reached(s) {
                p.set_dist(s, 0.0, NO_NODE);
                p.buckets[0].push(s);
                items += 1;
            }
        }
        // As in `dijkstra_core`, the published order holds only *settled*
        // nodes (nodes filed into buckets are stamped with tentative
        // distances on first touch; rebuild order from settles below).
        p.order.clear();
        if remaining == 0 {
            // Vacuous target set: nothing to settle (mirrors the other
            // cores' early exits).
            items = 0;
        }
        let mut i = 0usize; // absolute index of the bucket in flight
        while items > 0 {
            while p.buckets[i % slots].is_empty() {
                i += 1;
            }
            let settled_from = p.order.len();
            // Light phase: relax edges of weight <= delta to a fixpoint
            // within bucket i (a relaxation may re-file a node into the
            // bucket currently being drained).
            loop {
                let slot = i % slots;
                if p.buckets[slot].is_empty() {
                    break;
                }
                core::mem::swap(&mut p.buckets[slot], &mut *p.frontier);
                let mut idx = 0;
                while idx < p.frontier.len() {
                    let v = p.frontier[idx];
                    idx += 1;
                    items -= 1;
                    let vi = v.index();
                    let dv = p.dist[vi];
                    if (dv / delta) as usize != i {
                        // Superseded entry: the node's distance improved
                        // after this entry was filed; its live entry sits
                        // in the right bucket.
                        continue;
                    }
                    if p.aux_stamp[vi] != p.epoch {
                        // First settle in this bucket: record for the
                        // heavy phase and the published order
                        // (`aux_stamp` is the settled lane, as in
                        // Dijkstra).
                        p.aux_stamp[vi] = p.epoch;
                        p.order.push(v);
                        if targets.is_some_and(|t| t.contains(v)) {
                            remaining -= 1;
                        }
                    }
                    for (u, w) in view.neighbors_weighted(v) {
                        if w <= delta {
                            let cand = (dv + w).min(f64::MAX);
                            if relax(&mut p, slots, delta, max_dist, u, cand, vi as u32) {
                                items += 1;
                            }
                        }
                    }
                }
                p.frontier.clear();
            }
            // Heavy phase: one pass of the > delta edges from every node
            // settled in this bucket, at its now-final distance. A heavy
            // relaxation lands strictly past bucket i, so it never
            // reopens the bucket just drained.
            for idx in settled_from..p.order.len() {
                let v = p.order[idx];
                let dv = p.dist[v.index()];
                for (u, w) in view.neighbors_weighted(v) {
                    if w > delta {
                        let cand = (dv + w).min(f64::MAX);
                        if relax(&mut p, slots, delta, max_dist, u, cand, v.index() as u32) {
                            items += 1;
                        }
                    }
                }
            }
            if remaining == 0 {
                // All targets settled and their bucket fully processed:
                // their distances are final.
                break;
            }
            i += 1;
        }
        // Publish in non-decreasing distance order, ties by node index
        // (bit patterns of non-negative finite f64s order like the
        // values) — the same shape `dijkstra_core`'s pop order has.
        let dist: &[f64] = p.dist;
        p.order
            .sort_unstable_by_key(|v| (dist[v.index()].to_bits(), v.index()));
    }
    ws.sp_run()
}

/// Δ-stepping as a [`DistanceOracle`]: the weighted metric answered with
/// buckets instead of a binary heap. Distances are bit-identical to
/// [`super::WeightedOracle`]'s (see the module docs), so swapping one for
/// the other never changes pipeline output — only wall clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaSteppingOracle {
    delta: f64,
}

impl DeltaSteppingOracle {
    /// An oracle with a fixed bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not a finite positive number.
    pub fn new(delta: f64) -> Self {
        assert!(
            delta.is_finite() && delta > 0.0,
            "delta must be a finite positive bucket width, got {delta}"
        );
        DeltaSteppingOracle { delta }
    }

    /// An oracle with the [`auto_delta`] bucket width for `g`, or `None`
    /// when bucketing is not worthwhile for this graph.
    pub fn for_graph(g: &Graph) -> Option<Self> {
        auto_delta(g).map(Self::new)
    }

    /// The bucket width.
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

impl DistanceOracle for DeltaSteppingOracle {
    fn distances<A: Adjacency>(&self, view: &A, source: NodeId) -> DistanceMap {
        let r = delta_stepping(view, [source], self.delta);
        let dist = (0..view.universe())
            .map(|i| r.dist(NodeId::new(i)))
            .collect();
        DistanceMap::new(dist, r.order().to_vec())
    }

    fn distances_in<'w, A: Adjacency>(
        &self,
        view: &A,
        source: NodeId,
        ws: &'w mut TraversalWorkspace,
    ) -> DistanceMapIn<'w> {
        DistanceMapIn::Weighted(delta_stepping_in(ws, view, [source], self.delta))
    }

    fn distances_to_in<'w, A: Adjacency>(
        &self,
        view: &A,
        source: NodeId,
        targets: &NodeSet,
        ws: &'w mut TraversalWorkspace,
    ) -> DistanceMapIn<'w> {
        DistanceMapIn::Weighted(delta_stepping_to_in(
            ws,
            view,
            [source],
            self.delta,
            targets,
        ))
    }

    fn is_weighted_metric(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "delta"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{dijkstra, dijkstra_in};
    use crate::{gen, NodeSet};

    fn assert_same_run(g: &Graph, sources: &[NodeId], delta: f64) {
        let mut ws = TraversalWorkspace::new();
        let view = g.full_view();
        let d = dijkstra(&view, sources.iter().copied());
        let run = delta_stepping_in(&mut ws, &view, sources.iter().copied(), delta);
        for v in g.nodes() {
            assert_eq!(
                run.dist(v),
                d.dist(v),
                "dist mismatch at {v} (delta = {delta})"
            );
        }
        assert_eq!(run.order().len(), d.order().len());
        for (a, b) in run.order().iter().zip(d.order()) {
            assert_eq!(run.dist(*a), d.dist(*b), "order distance profile differs");
        }
    }

    #[test]
    fn matches_dijkstra_on_weighted_grid() {
        let g =
            gen::grid_weighted(7, 9, gen::WeightDist::Uniform { lo: 0.5, hi: 3.5 }, 42).unwrap();
        for delta in [0.5, 1.0, 3.5, 10.0] {
            assert_same_run(&g, &[NodeId::new(0)], delta);
            assert_same_run(&g, &[NodeId::new(17), NodeId::new(60)], delta);
        }
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::gnp_connected_weighted(
                60,
                0.08,
                seed,
                gen::WeightDist::Uniform { lo: 0.25, hi: 4.0 },
            )
            .unwrap();
            let delta = auto_delta(&g).expect("sane spread");
            assert_same_run(&g, &[NodeId::new(seed as usize)], delta);
        }
    }

    #[test]
    fn heavy_edges_exercised() {
        // delta = 1.0 makes the 5.0 edges heavy; path alternates light
        // and heavy.
        let g = Graph::from_weighted_edges(
            6,
            [
                (0, 1, 0.5),
                (1, 2, 5.0),
                (2, 3, 0.5),
                (3, 4, 5.0),
                (4, 5, 0.5),
            ],
        )
        .unwrap();
        let run = delta_stepping(&g.full_view(), [NodeId::new(0)], 1.0);
        assert_eq!(run.dist(NodeId::new(5)), 11.5);
        assert_same_run(&g, &[NodeId::new(0)], 1.0);
    }

    #[test]
    fn respects_subset_views() {
        let g = gen::grid_weighted(6, 6, gen::WeightDist::Uniform { lo: 1.0, hi: 2.0 }, 7).unwrap();
        let alive = NodeSet::from_nodes(36, (0..18).map(NodeId::new));
        let view = g.view(&alive);
        let mut ws = TraversalWorkspace::new();
        let d = dijkstra(&view, [NodeId::new(0)]);
        let run = delta_stepping_in(&mut ws, &view, [NodeId::new(0)], 1.0);
        for v in g.nodes() {
            assert_eq!(run.dist(v), d.dist(v), "dist mismatch at {v}");
        }
    }

    #[test]
    fn bounded_truncates_like_dijkstra() {
        let g =
            gen::grid_weighted(6, 6, gen::WeightDist::Uniform { lo: 0.5, hi: 2.0 }, 11).unwrap();
        let mut ws = TraversalWorkspace::new();
        let bound = 4.25;
        let d = crate::algo::dijkstra_bounded(&g.full_view(), [NodeId::new(0)], bound);
        let reached: Vec<_> = {
            let run =
                delta_stepping_bounded_in(&mut ws, &g.full_view(), [NodeId::new(0)], 1.0, bound);
            g.nodes().map(|v| (run.reached(v), run.dist(v))).collect()
        };
        for v in g.nodes() {
            assert_eq!(reached[v.index()].0, d.reached(v), "reach set at {v}");
            if d.reached(v) {
                assert_eq!(reached[v.index()].1, d.dist(v), "dist at {v}");
            }
        }
    }

    #[test]
    fn targets_settle_with_final_distances() {
        let g = gen::grid_weighted(8, 8, gen::WeightDist::Uniform { lo: 0.5, hi: 3.0 }, 5).unwrap();
        let targets = NodeSet::from_nodes(64, [NodeId::new(63), NodeId::new(42)]);
        let mut ws = TraversalWorkspace::new();
        let d = dijkstra(&g.full_view(), [NodeId::new(0)]);
        let run = delta_stepping_to_in(&mut ws, &g.full_view(), [NodeId::new(0)], 1.0, &targets);
        for t in targets.iter() {
            assert_eq!(run.dist(t), d.dist(t), "target {t} must be final");
        }
        // Vacuous target set: nothing settles.
        let empty = NodeSet::empty(64);
        let run = delta_stepping_to_in(&mut ws, &g.full_view(), [NodeId::new(0)], 1.0, &empty);
        assert_eq!(run.reached_count(), 0);
    }

    #[test]
    fn workspace_reuse_across_widths() {
        // Shrinking slot counts must not see stale entries from a wider
        // earlier run.
        let g =
            gen::grid_weighted(5, 5, gen::WeightDist::Uniform { lo: 0.25, hi: 4.0 }, 9).unwrap();
        let mut ws = TraversalWorkspace::new();
        for delta in [0.25, 4.0, 0.5, 2.0] {
            let view = g.full_view();
            let d = dijkstra_in(&mut ws, &view, [NodeId::new(3)]);
            let dists: Vec<f64> = g.nodes().map(|v| d.dist(v)).collect();
            let run = delta_stepping_in(&mut ws, &view, [NodeId::new(3)], delta);
            for v in g.nodes() {
                assert_eq!(run.dist(v), dists[v.index()], "delta = {delta}");
            }
        }
    }

    #[test]
    fn auto_delta_policy() {
        assert_eq!(auto_delta(&gen::path(5)), None, "unweighted");
        let uniform =
            gen::grid_weighted(4, 4, gen::WeightDist::Uniform { lo: 1.0, hi: 2.0 }, 1).unwrap();
        assert!(auto_delta(&uniform).is_some());
        let wild = Graph::from_weighted_edges(3, [(0, 1, 1e-6), (1, 2, 1e6)]).unwrap();
        assert_eq!(auto_delta(&wild), None, "spread beyond the limit");
        let zero = Graph::from_weighted_edges(2, [(0, 1, 0.0)]).unwrap();
        assert_eq!(auto_delta(&zero), None, "non-positive weight");
    }

    #[test]
    #[should_panic(expected = "finite positive")]
    fn rejects_nonpositive_delta() {
        let g = gen::grid_weighted(2, 2, gen::WeightDist::Unit, 0).unwrap();
        let _ = delta_stepping(&g.full_view(), [NodeId::new(0)], 0.0);
    }
}
