//! Weighted shortest paths: Dijkstra over the CSR, weighted
//! eccentricity/diameter, and a Bellman–Ford reference oracle.
//!
//! This module mirrors the hop-count API of [`super::bfs`] and
//! [`super::distance`] for graphs built with
//! [`GraphBuilder::weighted_edge`](crate::GraphBuilder::weighted_edge).
//! Weights are finite non-negative `f64`s (enforced at build time), so
//! every comparison below is total and the traversals are deterministic:
//! the priority queue breaks distance ties by node index.
//!
//! On an *unweighted* graph every edge counts as weight 1, so
//! [`dijkstra`] computes exactly the BFS hop distances — the test suite
//! pins this equivalence.

use crate::{Adjacency, NodeId};

/// Distance value for nodes not reached by a weighted search.
pub const W_UNREACHED: f64 = f64::INFINITY;

/// The result of a weighted shortest-path search.
///
/// Distances are measured in the view the search ran on; nodes outside
/// the view or in other components carry [`W_UNREACHED`].
#[derive(Debug, Clone)]
pub struct DijkstraResult {
    dist: Vec<f64>,
    parent: Vec<Option<NodeId>>,
    order: Vec<NodeId>,
}

impl DijkstraResult {
    /// Distance from the source set to `v`, or [`W_UNREACHED`].
    #[inline]
    pub fn dist(&self, v: NodeId) -> f64 {
        self.dist[v.index()]
    }

    /// Whether `v` was reached.
    #[inline]
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v.index()] != W_UNREACHED
    }

    /// Shortest-path-tree parent of `v` (`None` for sources and
    /// unreached nodes). The parent satisfies
    /// `dist(parent) + w(parent, v) == dist(v)`.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// The reached nodes in non-decreasing distance order (ties by node
    /// index).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of reached nodes.
    pub fn reached_count(&self) -> usize {
        self.order.len()
    }

    /// The largest distance reached — the weighted eccentricity of the
    /// source set within its component. `None` if nothing was reached.
    pub fn eccentricity(&self) -> Option<f64> {
        self.order.last().map(|&v| self.dist(v))
    }

    /// All reached nodes with distance at most `r`, in search order.
    pub fn ball(&self, r: f64) -> impl Iterator<Item = NodeId> + '_ {
        self.order
            .iter()
            .copied()
            .take_while(move |&v| self.dist(v) <= r)
    }

    /// Number of reached nodes with distance at most `r` (`O(log n)` via
    /// binary search over the sorted visit order).
    pub fn ball_count(&self, r: f64) -> usize {
        self.order.partition_point(|&v| self.dist(v) <= r)
    }
}

/// Runs Dijkstra from the given source set over `view`, using the base
/// graph's edge weights (1 per edge on unweighted graphs).
///
/// Sources not contained in the view are ignored. Runs until the whole
/// reachable region is explored.
pub fn dijkstra<A, I>(view: &A, sources: I) -> DijkstraResult
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    dijkstra_bounded(view, sources, W_UNREACHED)
}

/// Runs Dijkstra truncated at distance `max_dist` (inclusive).
///
/// Nodes farther than `max_dist` from every source are left
/// [`W_UNREACHED`].
///
/// Thin wrapper over [`super::dijkstra_bounded_in`] with a throwaway
/// [`super::TraversalWorkspace`]; repeated callers should hold a
/// workspace and use the `_in` form directly. The priority queue is a
/// max-heap of `Reverse((distance-bits, node))`: f64 bit patterns of
/// non-negative finite values order like the values themselves, and the
/// node index breaks ties deterministically.
pub fn dijkstra_bounded<A, I>(view: &A, sources: I, max_dist: f64) -> DijkstraResult
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    let mut ws = super::TraversalWorkspace::new();
    let run = super::dijkstra_bounded_in(&mut ws, view, sources, max_dist);
    DijkstraResult::from_run(view.universe(), &run)
}

impl DijkstraResult {
    /// Materializes an owned result from a workspace run view.
    pub(super) fn from_run(universe: usize, run: &super::SpRun<'_>) -> DijkstraResult {
        let mut dist = vec![W_UNREACHED; universe];
        let mut parent: Vec<Option<NodeId>> = vec![None; universe];
        for &v in run.order() {
            dist[v.index()] = run.dist(v);
            parent[v.index()] = run.parent(v);
        }
        DijkstraResult {
            dist,
            parent,
            order: run.order().to_vec(),
        }
    }
}

/// Weighted eccentricity of `v` within its component of `view`.
///
/// Returns `None` if `v` is not in the view.
pub fn weighted_eccentricity<A: Adjacency>(view: &A, v: NodeId) -> Option<f64> {
    if !view.contains(v) {
        return None;
    }
    dijkstra(view, [v]).eccentricity()
}

/// Exact weighted diameter of `view` via an all-pairs Dijkstra sweep.
///
/// Cost is `O(n · (n + m) log n)`; intended for validation and the
/// experiment suite, like [`super::diameter_exact`]. Disconnected views
/// report the largest distance within any single component.
pub fn weighted_diameter_exact<A: Adjacency>(view: &A) -> Option<f64> {
    let mut best: Option<f64> = None;
    for v in view.nodes() {
        let e = dijkstra(view, [v]).eccentricity()?;
        best = Some(best.map_or(e, |b| b.max(e)));
    }
    best
}

/// All-pairs weighted distances (only for small graphs; `O(n^2)`
/// memory). Unreachable or out-of-view pairs carry [`W_UNREACHED`].
pub fn weighted_pairwise_distances<A: Adjacency>(view: &A) -> Vec<Vec<f64>> {
    let n = view.universe();
    let mut out = vec![vec![W_UNREACHED; n]; n];
    for v in view.nodes() {
        let r = dijkstra(view, [v]);
        for u in view.nodes() {
            out[v.index()][u.index()] = r.dist(u);
        }
    }
    out
}

/// Bellman–Ford reference oracle: the same distances as [`dijkstra`],
/// computed by `O(n)` rounds of edge relaxation.
///
/// `O(n · m)` and completely independent of the priority-queue machinery
/// — this exists so the property-based tests can check Dijkstra against
/// an implementation too simple to share its bugs.
pub fn bellman_ford<A, I>(view: &A, sources: I) -> Vec<f64>
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    let n = view.universe();
    let mut dist = vec![W_UNREACHED; n];
    for s in sources {
        if view.contains(s) {
            dist[s.index()] = 0.0;
        }
    }
    for _ in 0..n.max(1) {
        let mut changed = false;
        for v in view.nodes() {
            if dist[v.index()] == W_UNREACHED {
                continue;
            }
            for (u, w) in view.neighbors_weighted(v) {
                let cand = dist[v.index()] + w;
                if cand < dist[u.index()] {
                    dist[u.index()] = cand;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{bfs, UNREACHED};
    use crate::{gen, Graph, NodeSet};

    fn weighted_path() -> Graph {
        // 0 -2.0- 1 -0.5- 2 -3.0- 3
        Graph::from_weighted_edges(4, [(0, 1, 2.0), (1, 2, 0.5), (2, 3, 3.0)]).unwrap()
    }

    #[test]
    fn weighted_path_distances() {
        let g = weighted_path();
        let r = dijkstra(&g.full_view(), [NodeId::new(0)]);
        assert_eq!(r.dist(NodeId::new(0)), 0.0);
        assert_eq!(r.dist(NodeId::new(1)), 2.0);
        assert_eq!(r.dist(NodeId::new(2)), 2.5);
        assert_eq!(r.dist(NodeId::new(3)), 5.5);
        assert_eq!(r.eccentricity(), Some(5.5));
        assert_eq!(r.parent(NodeId::new(3)), Some(NodeId::new(2)));
        assert_eq!(r.parent(NodeId::new(0)), None);
        assert_eq!(r.ball_count(2.5), 3);
        assert_eq!(r.ball(2.0).count(), 2);
    }

    #[test]
    fn dijkstra_takes_light_detours() {
        // Direct heavy edge vs a lighter two-hop path.
        let g = Graph::from_weighted_edges(3, [(0, 2, 10.0), (0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let r = dijkstra(&g.full_view(), [NodeId::new(0)]);
        assert_eq!(r.dist(NodeId::new(2)), 2.0);
        assert_eq!(r.parent(NodeId::new(2)), Some(NodeId::new(1)));
    }

    #[test]
    fn unit_weights_match_bfs_exactly() {
        for seed in 0..3 {
            let g = gen::gnp(40, 0.1, seed);
            let unit =
                Graph::from_weighted_edges(40, g.edges().map(|(u, v)| (u.index(), v.index(), 1.0)))
                    .unwrap();
            let b = bfs(&g.full_view(), [NodeId::new(0)]);
            let d = dijkstra(&unit.full_view(), [NodeId::new(0)]);
            for v in g.nodes() {
                let hop = b.dist(v);
                if hop == UNREACHED {
                    assert!(!d.reached(v));
                } else {
                    assert_eq!(d.dist(v), hop as f64, "node {v}");
                }
            }
        }
    }

    #[test]
    fn respects_view_and_bound() {
        let g = weighted_path();
        let alive = NodeSet::from_nodes(4, [0, 1, 3].map(NodeId::new));
        let r = dijkstra(&g.view(&alive), [NodeId::new(0)]);
        assert!(r.reached(NodeId::new(1)));
        assert!(!r.reached(NodeId::new(2)), "dead node");
        assert!(!r.reached(NodeId::new(3)), "must not cross dead node 2");

        let b = dijkstra_bounded(&g.full_view(), [NodeId::new(0)], 2.5);
        assert_eq!(b.reached_count(), 3);
        assert!(!b.reached(NodeId::new(3)));
    }

    #[test]
    fn multi_source_and_order_sorted() {
        let g = weighted_path();
        let r = dijkstra(&g.full_view(), [NodeId::new(0), NodeId::new(3)]);
        assert_eq!(r.dist(NodeId::new(2)), 2.5);
        let dists: Vec<f64> = r.order().iter().map(|&v| r.dist(v)).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]), "order sorted");
        assert_eq!(r.reached_count(), 4);
    }

    #[test]
    fn weighted_diameter_and_eccentricity() {
        let g = weighted_path();
        assert_eq!(weighted_diameter_exact(&g.full_view()), Some(5.5));
        assert_eq!(
            weighted_eccentricity(&g.full_view(), NodeId::new(1)),
            Some(3.5)
        );
        let alive = NodeSet::from_nodes(4, [0, 1].map(NodeId::new));
        assert_eq!(weighted_eccentricity(&g.view(&alive), NodeId::new(3)), None);
    }

    #[test]
    fn bellman_ford_agrees_on_random_weighted_graphs() {
        for seed in 0..4 {
            let base = gen::gnp(30, 0.12, seed);
            let g = Graph::from_weighted_edges(
                30,
                base.edges()
                    .enumerate()
                    .map(|(i, (u, v))| (u.index(), v.index(), ((i * 7 + 13) % 9) as f64 + 0.25)),
            )
            .unwrap();
            let d = dijkstra(&g.full_view(), [NodeId::new(0)]);
            let bf = bellman_ford(&g.full_view(), [NodeId::new(0)]);
            for v in g.nodes() {
                assert_eq!(d.dist(v), bf[v.index()], "node {v} seed {seed}");
            }
        }
    }

    #[test]
    fn pairwise_is_symmetric() {
        let g = Graph::from_weighted_edges(4, [(0, 1, 1.5), (1, 2, 2.5), (0, 2, 5.0), (2, 3, 1.0)])
            .unwrap();
        let d = weighted_pairwise_distances(&g.full_view());
        for (u, row) in d.iter().enumerate() {
            for (v, &duv) in row.iter().enumerate() {
                assert_eq!(duv, d[v][u], "pair ({u},{v})");
            }
        }
        assert_eq!(d[0][2], 4.0, "detour through 1 beats the direct edge");
    }

    #[test]
    fn zero_weights_are_handled() {
        let g = Graph::from_weighted_edges(3, [(0, 1, 0.0), (1, 2, 0.0)]).unwrap();
        let r = dijkstra(&g.full_view(), [NodeId::new(0)]);
        assert_eq!(r.dist(NodeId::new(2)), 0.0);
        assert_eq!(r.ball_count(0.0), 3);
    }

    #[test]
    fn empty_view() {
        let g = Graph::empty(0);
        let r = dijkstra(&g.full_view(), []);
        assert_eq!(r.reached_count(), 0);
        assert_eq!(r.eccentricity(), None);
        assert_eq!(weighted_diameter_exact(&g.full_view()), None);
    }
}
