//! Breadth-first search, single- and multi-source, with layer censuses.

use crate::{Adjacency, NodeId};

/// Distance value for nodes not reached by a BFS.
pub const UNREACHED: u32 = u32::MAX;

/// The result of a breadth-first search.
///
/// Distances are measured in the view the search ran on; nodes outside the
/// view or in other components carry [`UNREACHED`].
#[derive(Debug, Clone)]
pub struct BfsResult {
    dist: Vec<u32>,
    parent: Vec<Option<NodeId>>,
    order: Vec<NodeId>,
    layer_sizes: Vec<usize>,
    ball_sizes: Vec<usize>,
}

impl BfsResult {
    /// Distance from the source set to `v`, or [`UNREACHED`].
    #[inline]
    pub fn dist(&self, v: NodeId) -> u32 {
        self.dist[v.index()]
    }

    /// Whether `v` was reached.
    #[inline]
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v.index()] != UNREACHED
    }

    /// BFS-tree parent of `v` (`None` for sources and unreached nodes).
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// The reached nodes in non-decreasing distance order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of reached nodes.
    pub fn reached_count(&self) -> usize {
        self.order.len()
    }

    /// `layer_sizes()[d]` is the number of nodes at distance exactly `d`.
    pub fn layer_sizes(&self) -> &[usize] {
        &self.layer_sizes
    }

    /// Cumulative ball sizes: `ball_sizes()[r] = |B_r|`, the number of
    /// nodes within distance `r` of the source set. Prefix sums are
    /// computed once when the search finishes, not per call.
    pub fn ball_sizes(&self) -> &[usize] {
        &self.ball_sizes
    }

    /// Number of reached nodes within distance `r`, clamped: any `r`
    /// beyond the eccentricity returns the total reached count, and an
    /// empty result returns 0 (where `ball_sizes()[r]` would panic).
    pub fn ball_size(&self, r: u32) -> usize {
        match self.ball_sizes.len() {
            0 => 0,
            len => self.ball_sizes[(r as usize).min(len - 1)],
        }
    }

    /// The largest distance reached, i.e. the eccentricity of the source
    /// set within its component. `None` if nothing was reached.
    pub fn eccentricity(&self) -> Option<u32> {
        if self.layer_sizes.is_empty() {
            None
        } else {
            Some(self.layer_sizes.len() as u32 - 1)
        }
    }

    /// All reached nodes with distance at most `r`, in BFS order.
    pub fn ball(&self, r: u32) -> impl Iterator<Item = NodeId> + '_ {
        self.order
            .iter()
            .copied()
            .take_while(move |&v| self.dist(v) <= r)
    }
}

/// Runs a BFS from the given source set over `view`.
///
/// Sources not contained in the view are ignored. Runs until the whole
/// reachable region is explored.
pub fn bfs<A, I>(view: &A, sources: I) -> BfsResult
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    bfs_bounded(view, sources, u32::MAX)
}

/// Runs a BFS truncated at distance `max_dist` (inclusive).
///
/// Nodes farther than `max_dist` from every source are left [`UNREACHED`].
///
/// Thin wrapper over [`super::bfs_bounded_in`] with a throwaway
/// [`super::TraversalWorkspace`]; repeated callers should hold a
/// workspace and use the `_in` form directly.
pub fn bfs_bounded<A, I>(view: &A, sources: I, max_dist: u32) -> BfsResult
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    let mut ws = super::TraversalWorkspace::new();
    let run = super::bfs_bounded_in(&mut ws, view, sources, max_dist);
    BfsResult::from_run(view.universe(), &run)
}

impl BfsResult {
    /// Materializes an owned result from a workspace run view.
    pub(super) fn from_run(universe: usize, run: &super::BfsRun<'_>) -> BfsResult {
        let mut dist = vec![UNREACHED; universe];
        let mut parent: Vec<Option<NodeId>> = vec![None; universe];
        for &v in run.order() {
            dist[v.index()] = run.dist(v);
            parent[v.index()] = run.parent(v);
        }
        BfsResult {
            dist,
            parent,
            order: run.order().to_vec(),
            layer_sizes: run.layer_sizes().to_vec(),
            ball_sizes: run.ball_sizes().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, Graph, NodeSet};

    #[test]
    fn single_source_path() {
        let g = gen::path(5);
        let r = bfs(&g.full_view(), [NodeId::new(0)]);
        for v in 0..5 {
            assert_eq!(r.dist(NodeId::new(v)), v as u32);
        }
        assert_eq!(r.eccentricity(), Some(4));
        assert_eq!(r.layer_sizes(), &[1, 1, 1, 1, 1]);
        assert_eq!(r.ball_sizes(), vec![1, 2, 3, 4, 5]);
        assert_eq!(r.parent(NodeId::new(3)), Some(NodeId::new(2)));
        assert_eq!(r.parent(NodeId::new(0)), None);
    }

    #[test]
    fn multi_source() {
        let g = gen::path(7);
        let r = bfs(&g.full_view(), [NodeId::new(0), NodeId::new(6)]);
        assert_eq!(r.dist(NodeId::new(3)), 3);
        assert_eq!(r.dist(NodeId::new(5)), 1);
        assert_eq!(r.eccentricity(), Some(3));
        assert_eq!(r.layer_sizes(), &[2, 2, 2, 1]);
    }

    #[test]
    fn respects_view() {
        let g = gen::path(5);
        let alive = NodeSet::from_nodes(5, [0, 1, 3, 4].map(NodeId::new));
        let r = bfs(&g.view(&alive), [NodeId::new(0)]);
        assert!(r.reached(NodeId::new(1)));
        assert!(!r.reached(NodeId::new(2)));
        assert!(!r.reached(NodeId::new(3)), "must not cross dead node 2");
    }

    #[test]
    fn bounded_truncates() {
        let g = gen::path(10);
        let r = bfs_bounded(&g.full_view(), [NodeId::new(0)], 3);
        assert_eq!(r.reached_count(), 4);
        assert!(!r.reached(NodeId::new(4)));
        assert_eq!(r.ball(2).count(), 3);
    }

    #[test]
    fn disconnected_source_in_dead_set_ignored() {
        let g = gen::path(4);
        let alive = NodeSet::from_nodes(4, [1, 2, 3].map(NodeId::new));
        let r = bfs(&g.view(&alive), [NodeId::new(0)]);
        assert_eq!(r.reached_count(), 0);
        assert_eq!(r.eccentricity(), None);
    }

    #[test]
    fn order_is_nondecreasing_distance() {
        let g = gen::grid(5, 5);
        let r = bfs(&g.full_view(), [NodeId::new(12)]);
        let dists: Vec<u32> = r.order().iter().map(|&v| r.dist(v)).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(r.reached_count(), 25);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        let r = bfs(&g.full_view(), []);
        assert_eq!(r.reached_count(), 0);
    }

    #[test]
    fn ball_size_clamps_beyond_eccentricity() {
        let g = gen::path(5);
        let r = bfs(&g.full_view(), [NodeId::new(0)]);
        assert_eq!(r.ball_size(2), 3);
        assert_eq!(r.ball_size(4), 5);
        assert_eq!(
            r.ball_size(999),
            5,
            "clamped, where ball_sizes()[999] panics"
        );
        // A BFS that reached nothing reports 0 for every radius.
        let alive = NodeSet::from_nodes(4, [1, 2, 3].map(NodeId::new));
        let g4 = gen::path(4);
        let empty = bfs(&g4.view(&alive), [NodeId::new(0)]);
        assert_eq!(empty.ball_size(0), 0);
        assert_eq!(empty.ball_size(3), 0);
    }
}
