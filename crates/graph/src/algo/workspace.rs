//! Reusable, epoch-stamped traversal workspaces.
//!
//! The carving pipeline runs thousands of traversals over one index
//! space; allocating `O(n)` scratch per call (and clearing it) dominates
//! the wall clock of the sequential stack. A [`TraversalWorkspace`]
//! amortizes that: every per-node array is guarded by a *stamp* that
//! must equal the workspace's current epoch for the entry to be
//! meaningful, so starting a new traversal is one epoch increment — no
//! `O(n)` clear, the same trick the CONGEST engine's slot arenas use.
//!
//! Three layers of API, from convenient to raw:
//!
//! - [`bfs_in`] / [`bfs_bounded_in`] / [`bfs_to_in`] and
//!   [`dijkstra_in`] / [`dijkstra_bounded_in`] / [`dijkstra_to_in`]:
//!   drop-in `_in` variants of the owning traversals in
//!   [`super::bfs`] and [`super::weighted`]. They return borrowed
//!   run views ([`BfsRun`], [`SpRun`]) over the workspace instead of
//!   owned result structs; outputs are value-identical to the owning
//!   APIs.
//! - Pools: [`TraversalWorkspace::take_set`] /
//!   [`TraversalWorkspace::give_set`] recycle [`NodeSet`]s (cleared, not
//!   reallocated), [`TraversalWorkspace::take_aux_u32`] /
//!   [`TraversalWorkspace::give_aux_u32`] recycle plain `u32` buffers.
//!   Both hand out *owned* values, so a pooled set can be used while a
//!   run view borrows the workspace.
//! - Raw arenas: [`TraversalWorkspace::begin_hop`] /
//!   [`TraversalWorkspace::begin_sp`] expose the stamped arrays
//!   ([`HopParts`], [`SpParts`]) so traversal implementations in other
//!   crates (the `sdnd_congest` primitives) can run fused loops with
//!   their own accounting, then publish the result via
//!   [`TraversalWorkspace::hop_run`] / [`TraversalWorkspace::sp_run`].
//!
//! The workspace also pools the lane-word scratch of the bit-parallel
//! multi-source BFS ([`super::msbfs_in`] and friends), stamped with the
//! same epoch discipline; see [`super::msbfs`](super::MsBfsRun).
//!
//! Panic safety: a workspace that an unwinding traversal abandons
//! mid-run is safely reusable — the next `begin_*` advances the epoch,
//! which invalidates every partially written stamp at once.

use crate::{Adjacency, NodeId, NodeSet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::bfs::UNREACHED;
use super::weighted::W_UNREACHED;

/// Sentinel for "no parent" in the packed parent arrays.
const NO_NODE: u32 = u32::MAX;

/// Largest hop distance a traversal can assign: one below the
/// [`UNREACHED`] sentinel. Bounded traversals clamp their radius here so
/// `dist + 1` arithmetic can never wrap a reached node's distance into
/// the sentinel (the `u32::MAX` boundary of `bfs(…) =
/// bfs_bounded(…, u32::MAX)`).
pub const MAX_HOP_DIST: u32 = UNREACHED - 1;

/// Per-node scratch for hop (BFS) traversals.
#[derive(Debug, Default)]
struct HopScratch {
    epoch: u32,
    stamp: Vec<u32>,
    dist: Vec<u32>,
    parent: Vec<u32>,
    order: Vec<NodeId>,
    layer_sizes: Vec<usize>,
    ball_sizes: Vec<usize>,
    layer_counts64: Vec<u64>,
    ball_sizes64: Vec<u64>,
}

/// Per-node scratch for weighted (Dijkstra / relaxation) traversals.
#[derive(Debug, Default)]
struct SpScratch {
    epoch: u32,
    stamp: Vec<u32>,
    dist: Vec<f64>,
    parent: Vec<u32>,
    order: Vec<NodeId>,
    aux_stamp: Vec<u32>,
    aux_dist: Vec<f64>,
    aux_from: Vec<u32>,
    touched: Vec<NodeId>,
    frontier: Vec<NodeId>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    buckets: Vec<Vec<NodeId>>,
}

/// A reusable traversal workspace: stamped hop and weighted scratch plus
/// small pools of [`NodeSet`]s and `u32` buffers.
///
/// One workspace serves one thread of traversals over any sequence of
/// graphs (arrays grow to the largest universe seen and are never
/// shrunk). Holding one across repeated carving runs turns every
/// traversal's `O(n + m)` worth of allocations into `O(1)`.
#[derive(Debug, Default)]
pub struct TraversalWorkspace {
    hop: HopScratch,
    sp: SpScratch,
    pub(super) ms: super::msbfs::MsScratch,
    sets: Vec<NodeSet>,
    aux_u32: Vec<Vec<u32>>,
}

fn grow_u32(v: &mut Vec<u32>, n: usize, fill: u32) {
    if v.len() < n {
        v.resize(n, fill);
    }
}

fn grow_f64(v: &mut Vec<f64>, n: usize, fill: f64) {
    if v.len() < n {
        v.resize(n, fill);
    }
}

impl TraversalWorkspace {
    /// Creates an empty workspace (arrays grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    // ---- NodeSet / buffer pools -------------------------------------

    /// Takes an empty [`NodeSet`] over `universe` from the pool,
    /// recycling a previously given-back set when available.
    pub fn take_set(&mut self, universe: usize) -> NodeSet {
        match self.sets.pop() {
            Some(mut s) => {
                s.reset_to_universe(universe);
                s
            }
            None => NodeSet::empty(universe),
        }
    }

    /// Takes a pooled set over `universe` pre-filled with `nodes` (the
    /// pooled counterpart of [`NodeSet::from_nodes`]).
    pub fn take_set_from<I: IntoIterator<Item = NodeId>>(
        &mut self,
        universe: usize,
        nodes: I,
    ) -> NodeSet {
        let mut s = self.take_set(universe);
        for v in nodes {
            s.insert(v);
        }
        s
    }

    /// Returns a set to the pool for reuse by [`take_set`](Self::take_set).
    ///
    /// The pool is capped: callers may give back more sets than they
    /// took (the pipeline funnels freshly allocated component sets
    /// through here), and without a cap a long-lived workspace would
    /// retain one set per component ever processed. Excess sets are
    /// simply dropped.
    pub fn give_set(&mut self, set: NodeSet) {
        const POOL_CAP: usize = 32;
        if self.sets.len() < POOL_CAP {
            self.sets.push(set);
        }
    }

    /// Takes an owned `u32` scratch buffer (contents unspecified).
    pub fn take_aux_u32(&mut self) -> Vec<u32> {
        self.aux_u32.pop().unwrap_or_default()
    }

    /// Returns a buffer taken with [`take_aux_u32`](Self::take_aux_u32).
    pub fn give_aux_u32(&mut self, buf: Vec<u32>) {
        self.aux_u32.push(buf);
    }

    // ---- hop arena --------------------------------------------------

    /// Starts a new hop-traversal epoch over `universe` and exposes the
    /// raw stamped arrays. Intended for traversal *implementations*
    /// (this module and the `sdnd_congest` primitives); most callers
    /// want [`bfs_in`].
    pub fn begin_hop(&mut self, universe: usize) -> HopParts<'_> {
        let h = &mut self.hop;
        h.epoch = h.epoch.wrapping_add(1);
        if h.epoch == 0 {
            // Epoch counter wrapped: one full clear re-arms the stamps.
            h.stamp.iter_mut().for_each(|s| *s = 0);
            h.epoch = 1;
        }
        grow_u32(&mut h.stamp, universe, 0);
        grow_u32(&mut h.dist, universe, UNREACHED);
        grow_u32(&mut h.parent, universe, NO_NODE);
        h.order.clear();
        h.layer_sizes.clear();
        h.ball_sizes.clear();
        HopParts {
            epoch: h.epoch,
            stamp: &mut h.stamp,
            dist: &mut h.dist,
            parent: &mut h.parent,
            order: &mut h.order,
            layer_sizes: &mut h.layer_sizes,
            ball_sizes: &mut h.ball_sizes,
        }
    }

    /// A read view of the most recent hop traversal (empty before the
    /// first [`begin_hop`](Self::begin_hop)).
    pub fn hop_run(&self) -> BfsRun<'_> {
        let h = &self.hop;
        BfsRun {
            epoch: h.epoch,
            stamp: &h.stamp,
            dist: &h.dist,
            parent: &h.parent,
            order: &h.order,
            layer_sizes: &h.layer_sizes,
            ball_sizes: &h.ball_sizes,
        }
    }

    /// Mirrors the current hop run's layer sizes and cumulative ball
    /// sizes into the cached `u64` buffers (used by the congest layer
    /// census, whose counters are `u64`).
    pub fn fill_hop_counts_u64(&mut self) {
        let h = &mut self.hop;
        h.layer_counts64.clear();
        h.layer_counts64
            .extend(h.layer_sizes.iter().map(|&s| s as u64));
        h.ball_sizes64.clear();
        h.ball_sizes64
            .extend(h.ball_sizes.iter().map(|&s| s as u64));
    }

    /// The `u64` layer counts filled by
    /// [`fill_hop_counts_u64`](Self::fill_hop_counts_u64).
    pub fn hop_layer_counts_u64(&self) -> &[u64] {
        &self.hop.layer_counts64
    }

    /// The `u64` cumulative ball sizes filled by
    /// [`fill_hop_counts_u64`](Self::fill_hop_counts_u64).
    pub fn hop_ball_sizes_u64(&self) -> &[u64] {
        &self.hop.ball_sizes64
    }

    // ---- weighted arena ---------------------------------------------

    /// Starts a new weighted-traversal epoch over `universe` and exposes
    /// the raw stamped arrays; the weighted sibling of
    /// [`begin_hop`](Self::begin_hop).
    pub fn begin_sp(&mut self, universe: usize) -> SpParts<'_> {
        let s = &mut self.sp;
        s.epoch = s.epoch.wrapping_add(1);
        if s.epoch == 0 {
            s.stamp.iter_mut().for_each(|x| *x = 0);
            s.aux_stamp.iter_mut().for_each(|x| *x = 0);
            s.epoch = 1;
        }
        grow_u32(&mut s.stamp, universe, 0);
        grow_f64(&mut s.dist, universe, W_UNREACHED);
        grow_u32(&mut s.parent, universe, NO_NODE);
        grow_u32(&mut s.aux_stamp, universe, 0);
        grow_f64(&mut s.aux_dist, universe, W_UNREACHED);
        grow_u32(&mut s.aux_from, universe, NO_NODE);
        s.order.clear();
        s.touched.clear();
        s.frontier.clear();
        s.heap.clear();
        // An abandoned Δ-stepping run may leave entries behind; bucket
        // vectors keep their capacity across epochs.
        for b in &mut s.buckets {
            b.clear();
        }
        SpParts {
            epoch: s.epoch,
            stamp: &mut s.stamp,
            dist: &mut s.dist,
            parent: &mut s.parent,
            order: &mut s.order,
            aux_stamp: &mut s.aux_stamp,
            aux_dist: &mut s.aux_dist,
            aux_from: &mut s.aux_from,
            touched: &mut s.touched,
            frontier: &mut s.frontier,
            heap: &mut s.heap,
            buckets: &mut s.buckets,
        }
    }

    /// A read view of the most recent weighted traversal.
    pub fn sp_run(&self) -> SpRun<'_> {
        let s = &self.sp;
        SpRun {
            epoch: s.epoch,
            stamp: &s.stamp,
            dist: &s.dist,
            parent: &s.parent,
            order: &s.order,
        }
    }

    #[cfg(test)]
    fn force_hop_epoch(&mut self, epoch: u32) {
        self.hop.epoch = epoch;
    }
}

/// Raw mutable access to the hop arena for one traversal epoch.
///
/// Invariant: an entry of `dist` / `parent` is meaningful only when the
/// matching `stamp` entry equals `epoch`; [`visit`](Self::visit) is the
/// only sanctioned way to stamp a node. `layer_sizes` is maintained by
/// the traversal; [`seal`](Self::seal) derives the cumulative ball
/// sizes once at the end.
pub struct HopParts<'w> {
    /// The current epoch (what [`visit`](Self::visit) stamps with).
    pub epoch: u32,
    /// Per-node stamp; equal to `epoch` iff the node was visited.
    pub stamp: &'w mut [u32],
    /// Per-node hop distance (valid only when stamped).
    pub dist: &'w mut [u32],
    /// Per-node packed parent (`u32::MAX` = none; valid only when
    /// stamped).
    pub parent: &'w mut [u32],
    /// Visit order (doubles as the BFS queue).
    pub order: &'w mut Vec<NodeId>,
    /// `layer_sizes[d]` = number of nodes at distance exactly `d`.
    pub layer_sizes: &'w mut Vec<usize>,
    ball_sizes: &'w mut Vec<usize>,
}

impl HopParts<'_> {
    /// Whether `v` was visited in this epoch.
    #[inline]
    pub fn reached(&self, v: NodeId) -> bool {
        self.stamp[v.index()] == self.epoch
    }

    /// Stamps `v` at distance `d` with packed parent `parent`
    /// (`u32::MAX` for none) and appends it to the visit order.
    ///
    /// The stored distance saturates at [`MAX_HOP_DIST`]: the arena
    /// cannot represent the [`UNREACHED`] sentinel as a real distance,
    /// so a `dist + 1` computed at the `u32::MAX` boundary must not wrap
    /// a reached node into "unreached".
    #[inline]
    pub fn visit(&mut self, v: NodeId, d: u32, parent: u32) {
        let i = v.index();
        self.stamp[i] = self.epoch;
        self.dist[i] = d.min(MAX_HOP_DIST);
        self.parent[i] = parent;
        self.order.push(v);
    }

    /// Finishes the traversal: computes the cumulative ball sizes from
    /// the layer sizes.
    pub fn seal(self) {
        let mut acc = 0usize;
        self.ball_sizes.clear();
        self.ball_sizes.extend(self.layer_sizes.iter().map(|&s| {
            acc += s;
            acc
        }));
    }
}

/// Raw mutable access to the weighted arena for one traversal epoch.
///
/// `dist` / `parent` follow the same stamp discipline as [`HopParts`].
/// The `aux_*` arrays are a second stamped lane (Dijkstra's settled
/// marks, the relaxation candidates of the congest `sp_bfs`); `touched`,
/// `frontier`, and `heap` are cleared by
/// [`begin_sp`](TraversalWorkspace::begin_sp).
pub struct SpParts<'w> {
    /// The current epoch.
    pub epoch: u32,
    /// Per-node stamp; equal to `epoch` iff the node has a distance.
    pub stamp: &'w mut [u32],
    /// Per-node weighted distance (valid only when stamped).
    pub dist: &'w mut [f64],
    /// Per-node packed parent (`u32::MAX` = none; valid only when
    /// stamped).
    pub parent: &'w mut [u32],
    /// Nodes in first-stamped order (sort before sealing if the caller
    /// needs distance order).
    pub order: &'w mut Vec<NodeId>,
    /// Stamp lane for the auxiliary per-node state.
    pub aux_stamp: &'w mut [u32],
    /// Auxiliary per-node distance (relaxation candidates).
    pub aux_dist: &'w mut [f64],
    /// Auxiliary per-node packed sender.
    pub aux_from: &'w mut [u32],
    /// Scratch list of nodes touched this round.
    pub touched: &'w mut Vec<NodeId>,
    /// Scratch frontier list.
    pub frontier: &'w mut Vec<NodeId>,
    /// Scratch priority queue (distance bits, node index).
    pub heap: &'w mut BinaryHeap<Reverse<(u64, usize)>>,
    /// Cyclic bucket slots for Δ-stepping (emptied by
    /// [`begin_sp`](TraversalWorkspace::begin_sp), capacity retained).
    pub buckets: &'w mut Vec<Vec<NodeId>>,
}

impl SpParts<'_> {
    /// Whether `v` has a distance in this epoch.
    #[inline]
    pub fn reached(&self, v: NodeId) -> bool {
        self.stamp[v.index()] == self.epoch
    }

    /// The distance of `v`, or [`W_UNREACHED`] when unstamped.
    #[inline]
    pub fn dist_of(&self, v: NodeId) -> f64 {
        let i = v.index();
        if self.stamp[i] == self.epoch {
            self.dist[i]
        } else {
            W_UNREACHED
        }
    }

    /// Sets the distance and packed parent of `v`, stamping it (and
    /// recording it in `order`) on first touch.
    #[inline]
    pub fn set_dist(&mut self, v: NodeId, d: f64, parent: u32) {
        let i = v.index();
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.order.push(v);
        }
        self.dist[i] = d;
        self.parent[i] = parent;
    }
}

/// Borrowed view of one hop traversal inside a [`TraversalWorkspace`].
///
/// Value-identical accessors to [`super::BfsResult`] (and, for the
/// congest variant, `BfsOutcome`): unstamped nodes report
/// [`UNREACHED`] / `None`. `ball_sizes` returns the prefix sums computed
/// once at the end of the traversal.
#[derive(Clone, Copy)]
pub struct BfsRun<'w> {
    epoch: u32,
    stamp: &'w [u32],
    dist: &'w [u32],
    parent: &'w [u32],
    order: &'w [NodeId],
    layer_sizes: &'w [usize],
    ball_sizes: &'w [usize],
}

impl<'w> BfsRun<'w> {
    /// Distance from the source set to `v`, or [`UNREACHED`].
    #[inline]
    pub fn dist(&self, v: NodeId) -> u32 {
        let i = v.index();
        if i < self.stamp.len() && self.stamp[i] == self.epoch {
            self.dist[i]
        } else {
            UNREACHED
        }
    }

    /// Whether `v` was reached.
    #[inline]
    pub fn reached(&self, v: NodeId) -> bool {
        let i = v.index();
        i < self.stamp.len() && self.stamp[i] == self.epoch
    }

    /// Tree parent of `v` (`None` for sources and unreached nodes).
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let i = v.index();
        if i < self.stamp.len() && self.stamp[i] == self.epoch && self.parent[i] != NO_NODE {
            Some(NodeId::new(self.parent[i] as usize))
        } else {
            None
        }
    }

    /// The reached nodes in non-decreasing distance order.
    pub fn order(&self) -> &'w [NodeId] {
        self.order
    }

    /// Number of reached nodes.
    pub fn reached_count(&self) -> usize {
        self.order.len()
    }

    /// `layer_sizes()[d]` = number of nodes at distance exactly `d`.
    pub fn layer_sizes(&self) -> &'w [usize] {
        self.layer_sizes
    }

    /// Cumulative ball sizes `|B_r|` (prefix sums, computed once per
    /// traversal).
    pub fn ball_sizes(&self) -> &'w [usize] {
        self.ball_sizes
    }

    /// Number of reached nodes within distance `r`, clamped: any `r`
    /// beyond the eccentricity returns the total reached count, and an
    /// empty run returns 0 (where `ball_sizes()[r]` would panic).
    pub fn ball_size(&self, r: u32) -> usize {
        match self.ball_sizes.len() {
            0 => 0,
            len => self.ball_sizes[(r as usize).min(len - 1)],
        }
    }

    /// The largest distance reached (`None` if nothing was reached).
    pub fn eccentricity(&self) -> Option<u32> {
        (!self.layer_sizes.is_empty()).then(|| self.layer_sizes.len() as u32 - 1)
    }

    /// All reached nodes with distance at most `r`, in visit order.
    pub fn ball(self, r: u32) -> impl Iterator<Item = NodeId> + 'w {
        self.order
            .iter()
            .copied()
            .take_while(move |&v| self.dist(v) <= r)
    }
}

/// Borrowed view of one weighted traversal inside a
/// [`TraversalWorkspace`]; mirrors [`super::DijkstraResult`].
///
/// With a `_to_in` (targeted) traversal, only the distances of the
/// requested targets are guaranteed final — untargeted nodes may carry
/// tentative values or be missing.
#[derive(Clone, Copy)]
pub struct SpRun<'w> {
    epoch: u32,
    stamp: &'w [u32],
    dist: &'w [f64],
    parent: &'w [u32],
    order: &'w [NodeId],
}

impl<'w> SpRun<'w> {
    /// Distance from the source set to `v`, or [`W_UNREACHED`].
    #[inline]
    pub fn dist(&self, v: NodeId) -> f64 {
        let i = v.index();
        if i < self.stamp.len() && self.stamp[i] == self.epoch {
            self.dist[i]
        } else {
            W_UNREACHED
        }
    }

    /// Whether `v` was reached.
    #[inline]
    pub fn reached(&self, v: NodeId) -> bool {
        let i = v.index();
        i < self.stamp.len() && self.stamp[i] == self.epoch
    }

    /// Tree parent of `v` (`None` for sources and unreached nodes).
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let i = v.index();
        if i < self.stamp.len() && self.stamp[i] == self.epoch && self.parent[i] != NO_NODE {
            Some(NodeId::new(self.parent[i] as usize))
        } else {
            None
        }
    }

    /// The reached nodes in non-decreasing distance order (ties by node
    /// index).
    pub fn order(&self) -> &'w [NodeId] {
        self.order
    }

    /// Number of reached nodes.
    pub fn reached_count(&self) -> usize {
        self.order.len()
    }

    /// The largest distance reached (`None` if nothing was reached).
    pub fn eccentricity(&self) -> Option<f64> {
        self.order.last().map(|&v| self.dist(v))
    }

    /// All reached nodes with distance at most `r`, in distance order.
    pub fn ball(self, r: f64) -> impl Iterator<Item = NodeId> + 'w {
        self.order
            .iter()
            .copied()
            .take_while(move |&v| self.dist(v) <= r)
    }

    /// Number of reached nodes with distance at most `r`.
    pub fn ball_count(&self, r: f64) -> usize {
        self.order.partition_point(|&v| self.dist(v) <= r)
    }
}

// ---- the owning-API-compatible traversals over a workspace ----------

/// [`super::bfs`] into a workspace: full BFS, discovery-order parents.
pub fn bfs_in<'w, A, I>(ws: &'w mut TraversalWorkspace, view: &A, sources: I) -> BfsRun<'w>
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    bfs_core(ws, view, sources, u32::MAX, None)
}

/// [`super::bfs_bounded`] into a workspace: BFS truncated at `max_dist`
/// (inclusive).
pub fn bfs_bounded_in<'w, A, I>(
    ws: &'w mut TraversalWorkspace,
    view: &A,
    sources: I,
    max_dist: u32,
) -> BfsRun<'w>
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    bfs_core(ws, view, sources, max_dist, None)
}

/// BFS that stops once every member of `targets` is reached (targets'
/// distances are final; the rest of the run view is truncated). Used by
/// the early-terminating weak-diameter validators.
pub fn bfs_to_in<'w, A, I>(
    ws: &'w mut TraversalWorkspace,
    view: &A,
    sources: I,
    targets: &NodeSet,
) -> BfsRun<'w>
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    bfs_core(ws, view, sources, u32::MAX, Some(targets))
}

fn bfs_core<'w, A, I>(
    ws: &'w mut TraversalWorkspace,
    view: &A,
    sources: I,
    max_dist: u32,
    targets: Option<&NodeSet>,
) -> BfsRun<'w>
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    // Clamp so `du + 1` below can never reach the `UNREACHED` sentinel:
    // with `du < max_dist <= MAX_HOP_DIST`, `du + 1 <= MAX_HOP_DIST`.
    // Value-identical for every realizable input (distances are < n).
    let max_dist = max_dist.min(MAX_HOP_DIST);
    {
        let mut p = ws.begin_hop(view.universe());
        let mut remaining = targets.map_or(usize::MAX, NodeSet::len);
        for s in sources {
            if view.contains(s) && !p.reached(s) {
                p.visit(s, 0, NO_NODE);
                if targets.is_some_and(|t| t.contains(s)) {
                    remaining -= 1;
                }
            }
        }
        if !p.order.is_empty() {
            p.layer_sizes.push(p.order.len());
        }
        let mut head = 0usize;
        'run: while head < p.order.len() && remaining > 0 {
            let u = p.order[head];
            head += 1;
            let du = p.dist[u.index()];
            if du >= max_dist {
                continue;
            }
            for v in view.neighbors(u) {
                if !p.reached(v) {
                    if p.layer_sizes.len() <= (du + 1) as usize {
                        p.layer_sizes.push(0);
                    }
                    p.layer_sizes[(du + 1) as usize] += 1;
                    p.visit(v, du + 1, u.index() as u32);
                    if targets.is_some_and(|t| t.contains(v)) {
                        remaining -= 1;
                        if remaining == 0 {
                            break 'run;
                        }
                    }
                }
            }
        }
        p.seal();
    }
    ws.hop_run()
}

/// [`super::dijkstra`] into a workspace.
pub fn dijkstra_in<'w, A, I>(ws: &'w mut TraversalWorkspace, view: &A, sources: I) -> SpRun<'w>
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    dijkstra_core(ws, view, sources, W_UNREACHED, None)
}

/// [`super::dijkstra_bounded`] into a workspace.
pub fn dijkstra_bounded_in<'w, A, I>(
    ws: &'w mut TraversalWorkspace,
    view: &A,
    sources: I,
    max_dist: f64,
) -> SpRun<'w>
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    dijkstra_core(ws, view, sources, max_dist, None)
}

/// Dijkstra that stops once every member of `targets` is settled
/// (targets' distances are final; other nodes may carry tentative
/// values).
pub fn dijkstra_to_in<'w, A, I>(
    ws: &'w mut TraversalWorkspace,
    view: &A,
    sources: I,
    targets: &NodeSet,
) -> SpRun<'w>
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    dijkstra_core(ws, view, sources, W_UNREACHED, Some(targets))
}

fn dijkstra_core<'w, A, I>(
    ws: &'w mut TraversalWorkspace,
    view: &A,
    sources: I,
    max_dist: f64,
    targets: Option<&NodeSet>,
) -> SpRun<'w>
where
    A: Adjacency,
    I: IntoIterator<Item = NodeId>,
{
    {
        let mut p = ws.begin_sp(view.universe());
        let mut remaining = targets.map_or(usize::MAX, NodeSet::len);
        for s in sources {
            if view.contains(s) && !p.reached(s) {
                p.set_dist(s, 0.0, NO_NODE);
                p.heap.push(Reverse((0, s.index())));
            }
        }
        // The workspace `order` collects nodes in first-stamp order; for
        // Dijkstra the settle order is the sorted order we publish, so
        // rebuild it from the pops below.
        p.order.clear();
        if remaining == 0 {
            // Vacuous target set: nothing to settle (mirrors bfs_core's
            // `remaining > 0` loop gate).
            p.heap.clear();
        }
        while let Some(Reverse((dbits, vi))) = p.heap.pop() {
            // `aux_stamp` is the settled lane.
            if p.aux_stamp[vi] == p.epoch {
                continue;
            }
            let dv = f64::from_bits(dbits);
            debug_assert_eq!(dv, p.dist[vi], "heap entry is stale iff settled");
            p.aux_stamp[vi] = p.epoch;
            let v = NodeId::new(vi);
            p.order.push(v);
            if let Some(t) = targets {
                if t.contains(v) {
                    remaining -= 1;
                    if remaining == 0 {
                        break;
                    }
                }
            }
            for (u, w) in view.neighbors_weighted(v) {
                // Saturate at f64::MAX: a sum of finite weights may
                // overflow to infinity, which is the `W_UNREACHED`
                // sentinel — a reached node must never carry it.
                let cand = (dv + w).min(f64::MAX);
                if cand <= max_dist && cand < p.dist_of(u) {
                    let ui = u.index();
                    if p.stamp[ui] != p.epoch {
                        p.stamp[ui] = p.epoch;
                    }
                    p.dist[ui] = cand;
                    p.parent[ui] = vi as u32;
                    p.heap.push(Reverse((cand.to_bits(), ui)));
                }
            }
        }
        // Unsettled tentative nodes (possible only when stopping early on
        // targets) stay stamped with tentative values; documented on
        // `SpRun`.
    }
    ws.sp_run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{bfs, bfs_bounded, dijkstra, dijkstra_bounded};
    use crate::{gen, Graph};

    fn ids(v: &[usize]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn bfs_in_matches_owned_bfs_across_reuses() {
        let mut ws = TraversalWorkspace::new();
        let graphs = [
            gen::grid(6, 7),
            gen::path(30),
            gen::gnp_connected(40, 0.1, 3),
        ];
        for round in 0..3 {
            for g in &graphs {
                let src = NodeId::new(round * 3 % g.n());
                let own = bfs(&g.full_view(), [src]);
                let run = bfs_in(&mut ws, &g.full_view(), [src]);
                assert_eq!(run.order(), own.order());
                assert_eq!(run.layer_sizes(), own.layer_sizes());
                assert_eq!(run.ball_sizes(), own.ball_sizes());
                for v in g.nodes() {
                    assert_eq!(run.dist(v), own.dist(v));
                    assert_eq!(run.parent(v), own.parent(v));
                    assert_eq!(run.reached(v), own.reached(v));
                }
            }
        }
    }

    #[test]
    fn bounded_and_subset_views_match() {
        let mut ws = TraversalWorkspace::new();
        let g = gen::grid(5, 5);
        let alive = NodeSet::from_nodes(25, (0..25).filter(|&i| i != 7).map(NodeId::new));
        let view = g.view(&alive);
        let own = bfs_bounded(&view, ids(&[0, 24]), 3);
        let run = bfs_bounded_in(&mut ws, &view, ids(&[0, 24]), 3);
        assert_eq!(run.order(), own.order());
        assert_eq!(run.eccentricity(), own.eccentricity());
        for v in g.nodes() {
            assert_eq!(run.dist(v), own.dist(v), "node {v}");
        }
        assert_eq!(run.ball(2).count(), own.ball(2).count());
    }

    #[test]
    fn bfs_to_in_reports_final_target_distances() {
        let mut ws = TraversalWorkspace::new();
        let g = gen::path(12);
        let targets = NodeSet::from_nodes(12, ids(&[0, 4]));
        let run = bfs_to_in(&mut ws, &g.full_view(), [NodeId::new(0)], &targets);
        assert_eq!(run.dist(NodeId::new(4)), 4);
        assert!(
            !run.reached(NodeId::new(11)),
            "sweep stops once the targets are covered"
        );
        // Unreachable target: the sweep exhausts and reports unreached.
        let alive = NodeSet::from_nodes(12, (0..6).map(NodeId::new));
        let view = g.view(&alive);
        let targets = NodeSet::from_nodes(12, ids(&[0, 9]));
        let run = bfs_to_in(&mut ws, &view, [NodeId::new(0)], &targets);
        assert!(!run.reached(NodeId::new(9)));
    }

    #[test]
    fn dijkstra_in_matches_owned_dijkstra() {
        let mut ws = TraversalWorkspace::new();
        for seed in 0..3 {
            let base = gen::gnp_connected(35, 0.1, seed);
            let g = Graph::from_weighted_edges(
                35,
                base.edges()
                    .enumerate()
                    .map(|(i, (u, v))| (u.index(), v.index(), ((i * 5 + 3) % 7) as f64 + 0.5)),
            )
            .unwrap();
            let own = dijkstra(&g.full_view(), [NodeId::new(1)]);
            let run = dijkstra_in(&mut ws, &g.full_view(), [NodeId::new(1)]);
            assert_eq!(run.order(), own.order());
            for v in g.nodes() {
                assert_eq!(run.dist(v), own.dist(v));
                assert_eq!(run.parent(v), own.parent(v));
            }
            assert_eq!(run.eccentricity(), own.eccentricity());
            assert_eq!(run.ball_count(4.0), own.ball_count(4.0));

            let ownb = dijkstra_bounded(&g.full_view(), [NodeId::new(1)], 3.5);
            let runb = dijkstra_bounded_in(&mut ws, &g.full_view(), [NodeId::new(1)], 3.5);
            assert_eq!(runb.order(), ownb.order());
            for v in g.nodes() {
                assert_eq!(runb.dist(v), ownb.dist(v));
            }
        }
    }

    #[test]
    fn dijkstra_to_in_settles_targets_exactly() {
        let g = Graph::from_weighted_edges(4, [(0, 1, 2.0), (1, 2, 0.5), (2, 3, 3.0)]).unwrap();
        let mut ws = TraversalWorkspace::new();
        let targets = NodeSet::from_nodes(4, ids(&[2]));
        let run = dijkstra_to_in(&mut ws, &g.full_view(), [NodeId::new(0)], &targets);
        assert_eq!(run.dist(NodeId::new(2)), 2.5);
        assert!(!run.reached(NodeId::new(3)), "stopped before the far end");
    }

    #[test]
    fn pool_recycles_sets_and_buffers() {
        let mut ws = TraversalWorkspace::new();
        let mut s = ws.take_set(10);
        s.insert(NodeId::new(3));
        ws.give_set(s);
        let s2 = ws.take_set(70);
        assert_eq!(s2.universe(), 70);
        assert!(s2.is_empty(), "recycled set comes back empty");
        let filled = ws.take_set_from(70, ids(&[1, 5]));
        assert_eq!(filled.len(), 2);
        let mut b = ws.take_aux_u32();
        b.push(7);
        ws.give_aux_u32(b);
        assert!(ws.take_aux_u32().capacity() >= 1);
    }

    #[test]
    fn set_pool_is_capped() {
        // The pipeline funnels freshly allocated sets through give_set;
        // a long-lived workspace must not retain them all.
        let mut ws = TraversalWorkspace::new();
        for _ in 0..100 {
            ws.give_set(NodeSet::empty(64));
        }
        assert!(ws.sets.len() <= 32, "pool retained {} sets", ws.sets.len());
    }

    #[test]
    fn epoch_wraparound_resets_stamps() {
        let mut ws = TraversalWorkspace::new();
        let g = gen::path(5);
        let _ = bfs_in(&mut ws, &g.full_view(), [NodeId::new(0)]);
        // Force the next begin to wrap the epoch counter.
        ws.force_hop_epoch(u32::MAX);
        let run = bfs_in(&mut ws, &g.full_view(), [NodeId::new(4)]);
        assert_eq!(run.dist(NodeId::new(0)), 4);
        assert_eq!(run.reached_count(), 5);
        // And the run after the wrap is clean too.
        let run = bfs_in(&mut ws, &g.full_view(), [NodeId::new(2)]);
        assert_eq!(run.reached_count(), 5);
        assert_eq!(run.eccentricity(), Some(2));
    }

    #[test]
    fn visit_saturates_at_the_unreached_boundary() {
        // A traversal implementation (the congest fused loops use this
        // arena directly) computing `dist + 1` at the u32::MAX boundary
        // must not wrap a reached node's distance into the UNREACHED
        // sentinel: `visit` saturates at MAX_HOP_DIST.
        let mut ws = TraversalWorkspace::new();
        {
            let mut p = ws.begin_hop(4);
            p.visit(NodeId::new(0), MAX_HOP_DIST, NO_NODE);
            let du = p.dist[0];
            // The `du + 1` a fused discovery loop would compute.
            p.visit(NodeId::new(1), du.wrapping_add(1), 0);
            p.seal();
        }
        let run = ws.hop_run();
        assert!(run.reached(NodeId::new(1)));
        assert_ne!(
            run.dist(NodeId::new(1)),
            UNREACHED,
            "reached node must not report the UNREACHED sentinel"
        );
        assert_eq!(run.dist(NodeId::new(1)), MAX_HOP_DIST);
    }

    #[test]
    fn bounded_bfs_at_the_sentinel_bound_matches_unbounded() {
        let mut ws = TraversalWorkspace::new();
        let g = gen::grid(6, 6);
        let own = bfs(&g.full_view(), [NodeId::new(3)]);
        let run = bfs_bounded_in(&mut ws, &g.full_view(), [NodeId::new(3)], u32::MAX);
        assert_eq!(run.order(), own.order());
        assert_eq!(run.ball_sizes(), own.ball_sizes());
        for v in g.nodes() {
            assert_eq!(run.dist(v), own.dist(v));
        }
    }

    #[test]
    fn dijkstra_saturates_instead_of_overflowing_to_unreached() {
        // Two finite weights whose sum overflows f64: the far node is
        // reachable and must not carry the W_UNREACHED sentinel.
        let g = Graph::from_weighted_edges(3, [(0, 1, f64::MAX), (1, 2, f64::MAX)]).unwrap();
        let mut ws = TraversalWorkspace::new();
        let run = dijkstra_in(&mut ws, &g.full_view(), [NodeId::new(0)]);
        assert!(run.reached(NodeId::new(2)));
        assert!(
            run.dist(NodeId::new(2)).is_finite(),
            "reached node must not report the W_UNREACHED sentinel"
        );
        assert_eq!(run.dist(NodeId::new(2)), f64::MAX);
    }

    #[test]
    fn ball_size_clamps_out_of_range_radii() {
        let mut ws = TraversalWorkspace::new();
        let g = gen::path(5);
        let run = bfs_in(&mut ws, &g.full_view(), [NodeId::new(0)]);
        assert_eq!(run.ball_size(0), 1);
        assert_eq!(run.ball_size(4), 5);
        assert_eq!(run.ball_size(100), 5, "clamped to the total reached");
        assert_eq!(run.ball_size(u32::MAX), 5);
        // Empty run: every radius reports 0 instead of panicking.
        let empty = bfs_in(&mut ws, &g.full_view(), []);
        assert_eq!(empty.ball_size(0), 0);
        assert_eq!(empty.ball_size(7), 0);
    }

    #[test]
    fn abandoned_run_does_not_poison_the_workspace() {
        // Simulates a panicking carve: a traversal is begun and dropped
        // mid-flight, then the workspace is reused.
        let mut ws = TraversalWorkspace::new();
        let g = gen::grid(4, 4);
        {
            let mut p = ws.begin_hop(16);
            p.visit(NodeId::new(5), 0, NO_NODE);
            // ... unwound here: no seal, half-written state.
        }
        let own = bfs(&g.full_view(), [NodeId::new(0)]);
        let run = bfs_in(&mut ws, &g.full_view(), [NodeId::new(0)]);
        assert_eq!(run.order(), own.order());
        for v in g.nodes() {
            assert_eq!(run.dist(v), own.dist(v));
        }
    }
}
