//! DFS numbering of rooted trees.
//!
//! Lemma 3.1 of the paper splits a node set `S` into two halves "according
//! to the in-order traversal" of a BFS tree. For trees of arbitrary arity
//! the natural analogue is the depth-first (pre-order) traversal, with
//! children visited in index order; that is what the CONGEST primitive
//! computes (via subtree-size converge-cast and prefix offsets), and this
//! module is its centralized counterpart.

use crate::NodeId;

/// DFS pre-order of a rooted tree given by parent pointers.
#[derive(Debug, Clone)]
pub struct TreeOrder {
    order: Vec<NodeId>,
    position: Vec<u32>,
}

/// Marker for nodes not in the tree.
const NOT_IN_TREE: u32 = u32::MAX;

impl TreeOrder {
    /// The visited nodes in DFS pre-order (root first).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Position of `v` in the order, or `None` if `v` is not in the tree.
    pub fn position(&self, v: NodeId) -> Option<usize> {
        match self.position[v.index()] {
            NOT_IN_TREE => None,
            p => Some(p as usize),
        }
    }
}

/// Child lists of a parent-pointer forest as a flat CSR: node `p`'s
/// children are `children[start[p.index()]..start[p.index() + 1]]`, in
/// increasing index order.
///
/// A counting sort over the parent pointers: filling in increasing
/// child index leaves every parent's children already sorted, with
/// three flat arrays instead of one `Vec` per node. Shared by the DFS
/// numbering here and the congest tree primitives.
pub fn children_csr(universe: usize, parent: &[Option<NodeId>]) -> (Vec<usize>, Vec<NodeId>) {
    assert_eq!(
        parent.len(),
        universe,
        "parent vector must cover the index space"
    );
    let mut start = vec![0usize; universe + 1];
    for p in parent.iter().flatten() {
        start[p.index() + 1] += 1;
    }
    for i in 0..universe {
        start[i + 1] += start[i];
    }
    let mut children = vec![NodeId::new(0); start[universe]];
    let mut cursor = start.clone();
    for (i, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            children[cursor[p.index()]] = NodeId::new(i);
            cursor[p.index()] += 1;
        }
    }
    (start, children)
}

/// Computes the DFS pre-order of the tree rooted at `root`, where
/// `parent[v] = Some(p)` links `v` to its parent and the root has
/// `parent[root] = None`. Children are visited in increasing index order.
///
/// Nodes whose parent chains never reach `root` are not visited.
///
/// # Panics
///
/// Panics if the parent pointers contain a cycle reachable from a child
/// list (detected as a visit count exceeding `n`).
pub fn dfs_order_of_tree(n: usize, root: NodeId, parent: &[Option<NodeId>]) -> TreeOrder {
    let (start, children) = children_csr(n, parent);

    let mut order = Vec::new();
    let mut position = vec![NOT_IN_TREE; n];
    // Iterative DFS, children pushed in reverse so smallest pops first.
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        assert!(
            position[v.index()] == NOT_IN_TREE,
            "cycle in parent pointers at {v:?}"
        );
        position[v.index()] = order.len() as u32;
        order.push(v);
        assert!(order.len() <= n, "cycle in parent pointers");
        for &c in children[start[v.index()]..start[v.index() + 1]]
            .iter()
            .rev()
        {
            stack.push(c);
        }
    }
    TreeOrder { order, position }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: usize) -> Option<NodeId> {
        Some(NodeId::new(v))
    }

    #[test]
    fn line_tree() {
        // 0 -> 1 -> 2 -> 3 rooted at 0.
        let parent = vec![None, p(0), p(1), p(2)];
        let o = dfs_order_of_tree(4, NodeId::new(0), &parent);
        assert_eq!(
            o.order().iter().map(|v| v.index()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(o.position(NodeId::new(3)), Some(3));
    }

    #[test]
    fn branching_tree_children_in_index_order() {
        // Root 2 with children 0 and 4; 4 has children 1 and 3.
        let parent = vec![p(2), p(4), None, p(4), p(2)];
        let o = dfs_order_of_tree(5, NodeId::new(2), &parent);
        assert_eq!(
            o.order().iter().map(|v| v.index()).collect::<Vec<_>>(),
            vec![2, 0, 4, 1, 3]
        );
    }

    #[test]
    fn nodes_outside_tree_have_no_position() {
        let parent = vec![None, p(0), None, None];
        let o = dfs_order_of_tree(4, NodeId::new(0), &parent);
        assert_eq!(o.order().len(), 2);
        assert_eq!(o.position(NodeId::new(2)), None);
        assert_eq!(o.position(NodeId::new(3)), None);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected() {
        // 0 <-> 1 cycle, with 0 nominally the root but 1's child chain loops.
        let parent = vec![p(1), p(0)];
        let _ = dfs_order_of_tree(2, NodeId::new(0), &parent);
    }
}
