//! Induced-subgraph views.
//!
//! The carving algorithms of the paper repeatedly operate on the subgraph
//! `G[S]` induced by the alive set `S`, shrinking `S` as nodes are carved
//! or declared dead. Materializing each induced subgraph would be
//! quadratic over the life of the algorithm, so the crate exposes *views*:
//! lightweight adapters that filter the adjacency of the underlying
//! [`Graph`] through a [`NodeSet`] mask. Every traversal in [`crate::algo`]
//! is generic over [`Adjacency`] and therefore works on both.

use crate::{Graph, NodeId, NodeSet};

/// Read-only adjacency access for a (possibly induced) graph.
///
/// Implementors present a graph over the *index space* `0..universe()`;
/// only indices for which [`contains`](Self::contains) holds are part of
/// the graph. This trait is sealed in spirit — downstream code should not
/// need to implement it — but it is left open so the simulator can wrap
/// views with instrumentation.
pub trait Adjacency {
    /// Size of the node index space (not the number of alive nodes).
    fn universe(&self) -> usize;

    /// Whether node `v` is part of this view.
    fn contains(&self, v: NodeId) -> bool;

    /// Number of alive nodes.
    fn len(&self) -> usize;

    /// Whether the view has no alive node.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the alive neighbors of `v`.
    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_;

    /// Iterates over the alive nodes.
    fn nodes(&self) -> impl Iterator<Item = NodeId> + '_;

    /// The underlying full graph.
    fn graph(&self) -> &Graph;

    /// The unique identifier of node `v` (delegates to the base graph).
    fn id_of(&self, v: NodeId) -> u64 {
        self.graph().id_of(v)
    }

    /// Number of directed-edge slots of the *base* graph (`2 m`).
    ///
    /// Directed-edge ids live in the index space of the base CSR, not the
    /// view: an induced view keeps the ids of its base graph and simply
    /// leaves the slots of dead-adjacent edges unused. This is what lets
    /// the CONGEST engine address mailboxes in `O(1)` under any view.
    fn directed_edges(&self) -> usize {
        self.graph().directed_edges()
    }

    /// The rank of `to` within `from`'s *base-graph* neighbor list
    /// (`O(log deg(from))`), or `None` if the base edge is absent.
    /// Aliveness is not consulted; combine with
    /// [`contains`](Self::contains) for view-level adjacency.
    fn neighbor_rank(&self, from: NodeId, to: NodeId) -> Option<usize> {
        self.graph().neighbor_rank(from, to)
    }

    /// The base-graph directed-edge id of `from -> to`, or `None` if the
    /// base edge is absent (aliveness is not consulted).
    fn directed_edge(&self, from: NodeId, to: NodeId) -> Option<usize> {
        self.graph().directed_edge(from, to)
    }

    /// Whether the base graph carries edge weights (delegates to
    /// [`Graph::is_weighted`]).
    fn is_weighted(&self) -> bool {
        self.graph().is_weighted()
    }

    /// The weight of base-graph directed edge slot `e` (1 when
    /// unweighted). Slots are shared with the base graph, so this is
    /// well-defined under any view.
    fn edge_weight(&self, e: usize) -> f64 {
        self.graph().weight(e)
    }

    /// Iterates over the alive neighbors of `v` together with the weight
    /// of the connecting edge (1 on unweighted graphs).
    ///
    /// The iteration order matches [`neighbors`](Self::neighbors)
    /// restricted to alive nodes.
    fn neighbors_weighted(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let g = self.graph();
        g.out_slot_range(v)
            .zip(g.neighbors(v).iter().copied())
            .filter(|&(_, u)| self.contains(u))
            .map(move |(e, u)| (u, self.edge_weight(e)))
    }

    /// The alive node with minimum identifier, or `None` if empty.
    fn min_id_node(&self) -> Option<NodeId> {
        self.nodes().min_by_key(|&v| self.id_of(v))
    }

    /// Collects the alive set into a [`NodeSet`].
    fn to_node_set(&self) -> NodeSet {
        NodeSet::from_nodes(self.universe(), self.nodes())
    }
}

/// View of an entire [`Graph`] (every node alive).
#[derive(Clone, Copy, Debug)]
pub struct FullView<'a> {
    g: &'a Graph,
}

impl<'a> FullView<'a> {
    /// Creates a view over all of `g`.
    pub fn new(g: &'a Graph) -> Self {
        FullView { g }
    }
}

impl Adjacency for FullView<'_> {
    #[inline]
    fn universe(&self) -> usize {
        self.g.n()
    }

    #[inline]
    fn contains(&self, v: NodeId) -> bool {
        v.index() < self.g.n()
    }

    #[inline]
    fn len(&self) -> usize {
        self.g.n()
    }

    #[inline]
    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.g.neighbors(v).iter().copied()
    }

    fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.g.nodes()
    }

    #[inline]
    fn graph(&self) -> &Graph {
        self.g
    }
}

/// The induced view `G[S]` for an alive set `S`.
#[derive(Clone, Copy, Debug)]
pub struct SubsetView<'a> {
    g: &'a Graph,
    alive: &'a NodeSet,
}

impl<'a> SubsetView<'a> {
    /// Creates the induced view of `alive` in `g`.
    ///
    /// # Panics
    ///
    /// Panics if `alive.universe() != g.n()`.
    pub fn new(g: &'a Graph, alive: &'a NodeSet) -> Self {
        assert_eq!(
            alive.universe(),
            g.n(),
            "alive-set universe must match graph size"
        );
        SubsetView { g, alive }
    }

    /// The alive mask backing this view.
    pub fn alive(&self) -> &'a NodeSet {
        self.alive
    }
}

impl Adjacency for SubsetView<'_> {
    #[inline]
    fn universe(&self) -> usize {
        self.g.n()
    }

    #[inline]
    fn contains(&self, v: NodeId) -> bool {
        self.alive.contains(v)
    }

    #[inline]
    fn len(&self) -> usize {
        self.alive.len()
    }

    #[inline]
    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| self.alive.contains(u))
    }

    fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive.iter()
    }

    #[inline]
    fn graph(&self) -> &Graph {
        self.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path5() -> Graph {
        Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn full_view_matches_graph() {
        let g = path5();
        let v = g.full_view();
        assert_eq!(v.len(), 5);
        assert_eq!(v.universe(), 5);
        assert_eq!(
            v.neighbors(NodeId::new(2))
                .map(|u| u.index())
                .collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(v.min_id_node(), Some(NodeId::new(0)));
    }

    #[test]
    fn subset_view_filters_neighbors() {
        let g = path5();
        let alive = NodeSet::from_nodes(5, [0, 1, 2, 4].map(NodeId::new));
        let v = g.view(&alive);
        assert_eq!(v.len(), 4);
        assert!(!v.contains(NodeId::new(3)));
        // Node 2's neighbor 3 is filtered out; node 4 is isolated in the view.
        assert_eq!(
            v.neighbors(NodeId::new(2))
                .map(|u| u.index())
                .collect::<Vec<_>>(),
            vec![1]
        );
        assert_eq!(v.neighbors(NodeId::new(4)).count(), 0);
        assert_eq!(v.to_node_set(), alive);
    }

    #[test]
    #[should_panic(expected = "universe must match")]
    fn universe_mismatch_panics() {
        let g = path5();
        let alive = NodeSet::empty(4);
        let _ = g.view(&alive);
    }
}
