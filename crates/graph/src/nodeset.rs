//! Dense bitset over node indices.

use crate::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of nodes, stored as a dense bitset over the index space `0..n`.
///
/// `NodeSet` is the "alive mask" used throughout the carving algorithms:
/// the paper's iterations repeatedly zoom into induced subgraphs `G[S]`
/// of alive nodes, and this type represents `S` with `O(1)` membership
/// tests and cheap iteration.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSet {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl NodeSet {
    /// Creates an empty set over the index space `0..universe`.
    pub fn empty(universe: usize) -> Self {
        NodeSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
            len: 0,
        }
    }

    /// Creates the full set `{0, .., universe - 1}`.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::empty(universe);
        for w in s.words.iter_mut() {
            *w = !0;
        }
        if !universe.is_multiple_of(64) {
            if let Some(last) = s.words.last_mut() {
                *last = (1u64 << (universe % 64)) - 1;
            }
        }
        s.len = universe;
        s
    }

    /// Builds a set from an iterator of node ids.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(universe: usize, nodes: I) -> Self {
        let mut s = Self::empty(universe);
        for v in nodes {
            s.insert(v);
        }
        s
    }

    /// Size of the index space this set ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of nodes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        let i = v.index();
        assert!(
            i < self.universe,
            "node {i} outside universe {}",
            self.universe
        );
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Inserts a node; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        let i = v.index();
        assert!(
            i < self.universe,
            "node {i} outside universe {}",
            self.universe
        );
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes a node; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: NodeId) -> bool {
        let i = v.index();
        assert!(
            i < self.universe,
            "node {i} outside universe {}",
            self.universe
        );
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit != 0 {
            *w &= !bit;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes every node, keeping the allocation.
    pub fn clear(&mut self) {
        for w in self.words.iter_mut() {
            *w = 0;
        }
        self.len = 0;
    }

    /// Re-targets this set to an empty set over `universe`, reusing the
    /// word buffer (the recycling step of the workspace NodeSet pool).
    pub fn reset_to_universe(&mut self, universe: usize) {
        if universe == self.universe {
            self.clear();
        } else {
            self.words.clear();
            self.words.resize(universe.div_ceil(64), 0);
            self.universe = universe;
            self.len = 0;
        }
    }

    /// Makes `self` a copy of `other` without allocating when the word
    /// buffer already has capacity (allocation-free `clone_from` for
    /// pooled sets).
    pub fn assign(&mut self, other: &NodeSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.universe = other.universe;
        self.len = other.len;
    }

    /// Removes every node of `other` from `self`.
    pub fn subtract(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
        self.recount();
    }

    /// Intersects `self` with `other` in place.
    pub fn intersect(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        self.recount();
    }

    /// Unions `other` into `self`.
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        self.recount();
    }

    /// Returns `true` if the sets share no node.
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterates over the members in increasing index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    fn recount(&mut self) {
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Builds a set whose universe is one past the maximum index seen.
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let nodes: Vec<NodeId> = iter.into_iter().collect();
        let universe = nodes.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        Self::from_nodes(universe, nodes)
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the members of a [`NodeSet`].
pub struct Iter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(NodeId::new(self.word_idx * 64 + bit));
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn empty_and_full() {
        let e = NodeSet::empty(100);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = NodeSet::full(100);
        assert_eq!(f.len(), 100);
        assert!(f.contains(NodeId::new(99)));
        assert_eq!(f.iter().count(), 100);
    }

    #[test]
    fn full_respects_partial_last_word() {
        let f = NodeSet::full(65);
        assert_eq!(f.len(), 65);
        assert_eq!(f.iter().map(|v| v.index()).max(), Some(64));
    }

    #[test]
    fn insert_remove() {
        let mut s = NodeSet::empty(10);
        assert!(s.insert(NodeId::new(3)));
        assert!(!s.insert(NodeId::new(3)));
        assert!(s.contains(NodeId::new(3)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(NodeId::new(3)));
        assert!(!s.remove(NodeId::new(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_operations() {
        let mut a = NodeSet::from_nodes(10, ids(&[1, 2, 3, 4]));
        let b = NodeSet::from_nodes(10, ids(&[3, 4, 5]));
        a.subtract(&b);
        assert_eq!(a.iter().map(|v| v.index()).collect::<Vec<_>>(), vec![1, 2]);

        let mut c = NodeSet::from_nodes(10, ids(&[1, 2, 3]));
        c.intersect(&b);
        assert_eq!(c.iter().map(|v| v.index()).collect::<Vec<_>>(), vec![3]);

        let mut d = NodeSet::from_nodes(10, ids(&[1]));
        d.union_with(&b);
        assert_eq!(d.len(), 4);

        assert!(NodeSet::from_nodes(10, ids(&[1])).is_disjoint(&b));
        assert!(!NodeSet::from_nodes(10, ids(&[3])).is_disjoint(&b));
    }

    #[test]
    fn iteration_order_is_sorted() {
        let s = NodeSet::from_nodes(200, ids(&[150, 3, 64, 65, 199, 0]));
        let got: Vec<usize> = s.iter().map(|v| v.index()).collect();
        assert_eq!(got, vec![0, 3, 64, 65, 150, 199]);
    }

    #[test]
    fn from_iterator_universe() {
        let s: NodeSet = ids(&[5, 9]).into_iter().collect();
        assert_eq!(s.universe(), 10);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_range_panics() {
        let s = NodeSet::empty(4);
        let _ = s.contains(NodeId::new(4));
    }
}
