//! Property suite for the set-algebra substrate: [`NodeSet`] against a
//! reference `HashSet` model, and [`Adjacency`] views against the base
//! graph. The carving loops lean on these operations for every alive-set
//! update, so the laws here are load-bearing for all of the algorithm
//! crates.

use proptest::prelude::*;
use sdnd_graph::{Adjacency, Graph, NodeId, NodeSet};
use std::collections::HashSet;

const UNIVERSE: usize = 64;

/// Strategy: a node subset of `0..UNIVERSE` as both model and bitset.
fn arb_set() -> impl Strategy<Value = (HashSet<usize>, NodeSet)> {
    prop::collection::hash_set(0usize..UNIVERSE, 0..UNIVERSE).prop_map(|model| {
        let set = NodeSet::from_nodes(UNIVERSE, model.iter().map(|&i| NodeId::new(i)));
        (model, set)
    })
}

/// Strategy: a random simple graph plus an alive mask over its nodes.
fn arb_graph_and_mask() -> impl Strategy<Value = (Graph, NodeSet)> {
    (4usize..40).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..(n * 2));
        let mask = prop::collection::vec(prop::bool::ANY, n);
        (edges, mask).prop_map(move |(raw, mask)| {
            let filtered: Vec<(usize, usize)> = raw.into_iter().filter(|&(u, v)| u != v).collect();
            let g = Graph::from_edges(n, filtered).expect("filtered edges are valid");
            let alive = NodeSet::from_nodes(n, (0..n).filter(|&i| mask[i]).map(NodeId::new));
            (g, alive)
        })
    })
}

fn to_model(s: &NodeSet) -> HashSet<usize> {
    s.iter().map(|v| v.index()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn membership_matches_model(sets in arb_set()) {
        let (model, set) = sets;
        prop_assert_eq!(set.len(), model.len());
        prop_assert_eq!(set.is_empty(), model.is_empty());
        prop_assert_eq!(set.universe(), UNIVERSE);
        for i in 0..UNIVERSE {
            prop_assert_eq!(set.contains(NodeId::new(i)), model.contains(&i), "at {}", i);
        }
        // Iteration yields exactly the members, in increasing index order.
        let iterated: Vec<usize> = set.iter().map(|v| v.index()).collect();
        let mut expected: Vec<usize> = model.iter().copied().collect();
        expected.sort_unstable();
        prop_assert_eq!(iterated, expected);
    }

    #[test]
    fn insert_and_remove_match_model(sets in arb_set(), idx in 0usize..UNIVERSE) {
        let (mut model, mut set) = sets;
        let v = NodeId::new(idx);
        prop_assert_eq!(set.insert(v), model.insert(idx));
        prop_assert_eq!(to_model(&set), model.clone());
        // Double-insert reports false and is a no-op.
        prop_assert!(!set.insert(v));
        prop_assert_eq!(set.len(), model.len());
        prop_assert_eq!(set.remove(v), model.remove(&idx));
        prop_assert_eq!(to_model(&set), model.clone());
        prop_assert!(!set.remove(v));
    }

    #[test]
    fn binary_operations_match_model(a in arb_set(), b in arb_set()) {
        let (ma, sa) = a;
        let (mb, sb) = b;

        let mut union = sa.clone();
        union.union_with(&sb);
        prop_assert_eq!(to_model(&union), ma.union(&mb).copied().collect::<HashSet<_>>());

        let mut inter = sa.clone();
        inter.intersect(&sb);
        prop_assert_eq!(
            to_model(&inter),
            ma.intersection(&mb).copied().collect::<HashSet<_>>()
        );

        let mut diff = sa.clone();
        diff.subtract(&sb);
        prop_assert_eq!(
            to_model(&diff),
            ma.difference(&mb).copied().collect::<HashSet<_>>()
        );

        prop_assert_eq!(sa.is_disjoint(&sb), ma.is_disjoint(&mb));
        // Inclusion–exclusion ties the three operations together.
        prop_assert_eq!(union.len() + inter.len(), sa.len() + sb.len());
    }

    #[test]
    fn algebraic_laws_hold(a in arb_set(), b in arb_set()) {
        let (_, sa) = a;
        let (_, sb) = b;

        // Commutativity of union and intersection.
        let mut ab = sa.clone();
        ab.union_with(&sb);
        let mut ba = sb.clone();
        ba.union_with(&sa);
        prop_assert_eq!(&ab, &ba);

        let mut iab = sa.clone();
        iab.intersect(&sb);
        let mut iba = sb.clone();
        iba.intersect(&sa);
        prop_assert_eq!(&iab, &iba);

        // Idempotence.
        let mut self_union = sa.clone();
        self_union.union_with(&sa);
        prop_assert_eq!(&self_union, &sa);

        // A \ B is disjoint from B, and (A \ B) ∪ (A ∩ B) = A.
        let mut diff = sa.clone();
        diff.subtract(&sb);
        prop_assert!(diff.is_disjoint(&sb));
        let mut rebuilt = diff.clone();
        rebuilt.union_with(&iab);
        prop_assert_eq!(&rebuilt, &sa);

        // Complement laws against the full and empty sets.
        let full = NodeSet::full(UNIVERSE);
        let empty = NodeSet::empty(UNIVERSE);
        let mut with_full = sa.clone();
        with_full.union_with(&full);
        prop_assert_eq!(&with_full, &full);
        let mut with_empty = sa.clone();
        with_empty.intersect(&empty);
        prop_assert_eq!(&with_empty, &empty);
    }

    #[test]
    fn subset_view_agrees_with_mask(input in arb_graph_and_mask()) {
        let (g, alive) = input;
        let view = g.view(&alive);

        prop_assert_eq!(view.universe(), g.n());
        prop_assert_eq!(view.len(), alive.len());
        prop_assert_eq!(view.is_empty(), alive.is_empty());
        prop_assert_eq!(view.to_node_set(), alive.clone());

        // nodes() iterates exactly the alive set.
        let nodes: Vec<NodeId> = view.nodes().collect();
        let from_mask: Vec<NodeId> = alive.iter().collect();
        prop_assert_eq!(nodes, from_mask);

        for v in g.nodes() {
            prop_assert_eq!(view.contains(v), alive.contains(v));
        }
    }

    #[test]
    fn subset_view_filters_adjacency(input in arb_graph_and_mask()) {
        let (g, alive) = input;
        let view = g.view(&alive);
        let full = g.full_view();

        for v in view.nodes() {
            // Neighbors in the view are the alive neighbors of the graph.
            let got: HashSet<usize> = view.neighbors(v).map(|u| u.index()).collect();
            let want: HashSet<usize> = full
                .neighbors(v)
                .filter(|&u| alive.contains(u))
                .map(|u| u.index())
                .collect();
            prop_assert_eq!(got, want, "neighbors of {}", v);
        }

        // Symmetry survives the mask.
        for v in view.nodes() {
            for u in view.neighbors(v) {
                prop_assert!(
                    view.neighbors(u).any(|w| w == v),
                    "edge ({}, {}) not symmetric in the view",
                    v,
                    u
                );
            }
        }
    }

    #[test]
    fn min_id_node_agrees_with_identifiers(input in arb_graph_and_mask()) {
        let (g, alive) = input;
        // Install adversarial (reverse-shifted, injective) identifiers so
        // the property is not vacuous under the default id(v) = v.
        let ids: Vec<u64> = (0..g.n() as u64).map(|i| (g.n() as u64 - i) * 5 + 3).collect();
        let g = g.with_ids(ids).expect("injective ids");
        let view = g.view(&alive);

        let want = alive.iter().min_by_key(|&v| g.id_of(v));
        prop_assert_eq!(view.min_id_node(), want);
    }
}
