//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use sdnd_graph::{algo, gen, Adjacency, Graph, NodeId, NodeSet};

/// Strategy: a random simple graph as an edge list over `n` nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..(n * 2));
        edges.prop_map(move |raw| {
            let filtered: Vec<(usize, usize)> = raw.into_iter().filter(|&(u, v)| u != v).collect();
            Graph::from_edges(n, filtered).expect("filtered edges are valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_roundtrip_preserves_edges(g in arb_graph()) {
        let edges: Vec<(usize, usize)> = g.edges().map(|(u, v)| (u.index(), v.index())).collect();
        let g2 = Graph::from_edges(g.n(), edges.iter().copied()).unwrap();
        prop_assert_eq!(&g, &g2);
        // Degree sums to 2m.
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
        // Adjacency is symmetric.
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_inequality_on_edges(g in arb_graph()) {
        let view = g.full_view();
        let src = NodeId::new(0);
        let bfs = algo::bfs(&view, [src]);
        for (u, v) in g.edges() {
            if bfs.reached(u) && bfs.reached(v) {
                let (du, dv) = (bfs.dist(u) as i64, bfs.dist(v) as i64);
                prop_assert!((du - dv).abs() <= 1, "edge ({u},{v}): |{du}-{dv}| > 1");
            }
            // Reachability is edge-closed.
            prop_assert_eq!(bfs.reached(u), bfs.reached(v));
        }
    }

    #[test]
    fn pairwise_distances_are_a_metric(g in arb_graph()) {
        let d = algo::pairwise_distances(&g.full_view());
        let n = g.n();
        for (u, row) in d.iter().enumerate() {
            prop_assert_eq!(row[u], 0);
            for (v, &duv) in row.iter().enumerate() {
                prop_assert_eq!(duv, d[v][u]);
            }
        }
        // Triangle inequality through any finite intermediate.
        for u in 0..n {
            for v in 0..n {
                for w in 0..n {
                    let (a, b, c) = (d[u][w], d[u][v], d[v][w]);
                    if b != u32::MAX && c != u32::MAX {
                        prop_assert!(a <= b + c);
                    }
                }
            }
        }
    }

    #[test]
    fn components_partition_the_nodes(g in arb_graph()) {
        let comps = algo::connected_components(&g.full_view());
        let total: usize = comps.sizes().iter().sum();
        prop_assert_eq!(total, g.n());
        // Edge endpoints always share a component.
        for (u, v) in g.edges() {
            prop_assert_eq!(comps.label(u), comps.label(v));
        }
    }

    #[test]
    fn induced_subgraph_is_consistent_with_view(g in arb_graph(), mask in prop::collection::vec(prop::bool::ANY, 40)) {
        let alive = NodeSet::from_nodes(
            g.n(),
            g.nodes().filter(|v| mask.get(v.index()).copied().unwrap_or(false)),
        );
        let view = g.view(&alive);
        let ind = algo::induced_subgraph(&view);
        prop_assert_eq!(ind.graph().n(), alive.len());
        // Edge counts agree with the filtered view.
        let view_edges: usize = alive.iter().map(|v| view.neighbors(v).count()).sum::<usize>() / 2;
        prop_assert_eq!(ind.graph().m(), view_edges);
        // Mappings invert each other.
        for i in 0..ind.graph().n() {
            let orig = ind.original_of(NodeId::new(i));
            prop_assert_eq!(ind.compact_of(orig), Some(NodeId::new(i)));
        }
    }

    #[test]
    fn power_graph_contracts_distances(g in arb_graph(), k in 1u32..4) {
        let d1 = algo::pairwise_distances(&g.full_view());
        let gk = algo::power_graph(&g.full_view(), k);
        let dk = algo::pairwise_distances(&gk.full_view());
        for u in 0..g.n() {
            for v in 0..g.n() {
                if u == v { continue; }
                match (d1[u][v], dk[u][v]) {
                    (u32::MAX, got) => prop_assert_eq!(got, u32::MAX),
                    (orig, got) => prop_assert_eq!(got, orig.div_ceil(k)),
                }
            }
        }
    }

    #[test]
    fn subdivision_scales_adjacent_distances(g in arb_graph(), len in 2usize..5) {
        let s = gen::subdivide(&g, len);
        prop_assert_eq!(s.n(), g.n() + g.m() * (len - 1));
        prop_assert_eq!(s.m(), g.m() * len);
        let ds = algo::pairwise_distances(&s.full_view());
        for (u, v) in g.edges() {
            prop_assert_eq!(ds[u.index()][v.index()], len as u32);
        }
    }

    #[test]
    fn nodeset_operations_match_reference(
        a in prop::collection::hash_set(0usize..64, 0..32),
        b in prop::collection::hash_set(0usize..64, 0..32),
    ) {
        let sa = NodeSet::from_nodes(64, a.iter().map(|&i| NodeId::new(i)));
        let sb = NodeSet::from_nodes(64, b.iter().map(|&i| NodeId::new(i)));

        let mut union = sa.clone();
        union.union_with(&sb);
        prop_assert_eq!(union.len(), a.union(&b).count());

        let mut inter = sa.clone();
        inter.intersect(&sb);
        prop_assert_eq!(inter.len(), a.intersection(&b).count());

        let mut diff = sa.clone();
        diff.subtract(&sb);
        prop_assert_eq!(diff.len(), a.difference(&b).count());

        prop_assert_eq!(sa.is_disjoint(&sb), a.is_disjoint(&b));
    }

    #[test]
    fn two_sweep_never_exceeds_exact_diameter(g in arb_graph()) {
        let view = g.full_view();
        if let (Some(exact), Some(ts)) =
            (algo::diameter_exact(&view), algo::diameter_two_sweep(&view))
        {
            prop_assert!(ts <= exact);
        }
    }

    #[test]
    fn serde_roundtrips(g in arb_graph()) {
        // Graphs and node sets are data structures (C-SERDE); a
        // serialize/deserialize cycle must be the identity.
        let json = serde_json::to_string(&g).expect("serializable");
        let back: Graph = serde_json::from_str(&json).expect("deserializable");
        prop_assert_eq!(back, g.clone());

        let set = NodeSet::from_nodes(g.n(), g.nodes().take(3));
        let json = serde_json::to_string(&set).expect("serializable");
        let back: NodeSet = serde_json::from_str(&json).expect("deserializable");
        prop_assert_eq!(back, set);
    }
}

#[test]
fn generators_have_documented_shapes() {
    assert_eq!(gen::grid(5, 7).m(), 4 * 7 + 5 * 6);
    assert_eq!(gen::hypercube(5).m(), 5 * 16);
    assert_eq!(gen::balanced_tree(3, 3).n(), 1 + 3 + 9);
    assert_eq!(gen::caterpillar(4, 3).n(), 16);
    let t = gen::random_tree(33, 9);
    assert_eq!(t.m(), 32);
    assert!(algo::is_connected(&t.full_view()));
}
