//! Property-based equivalence of the bit-parallel MS-BFS against the
//! sequential single-source engine: every lane of a batched run must
//! report exactly the distances, reachability, and eccentricity that a
//! dedicated `bfs_in` from that lane's source would — on arbitrary
//! graphs, subset views, distance bounds, and target sets, including
//! ragged (> 64 source) multi-batch sweeps through the distance
//! helpers.

use proptest::prelude::*;
use sdnd_graph::algo::{
    self, bfs_bounded_in, bfs_in, bfs_to_in, msbfs_bounded_in, msbfs_in, msbfs_sets_bounded_in,
    msbfs_to_in, TraversalWorkspace, MS_LANES,
};
use sdnd_graph::{Adjacency, Graph, NodeId, NodeSet};

/// Strategy: a random simple graph (possibly disconnected) plus an
/// alive-subset mask and a seed for picking sources.
fn arb_instance() -> impl Strategy<Value = (Graph, NodeSet, u64)> {
    (2usize..48, 0u64..1000).prop_flat_map(|(n, seed)| {
        let edges = prop::collection::vec((0..n, 0..n), 0..(n * 2));
        edges.prop_map(move |raw| {
            let filtered: Vec<(usize, usize)> = raw.into_iter().filter(|&(u, v)| u != v).collect();
            let g = Graph::from_edges(n, filtered).expect("filtered edges are valid");
            // ~80% of the nodes stay alive, hash-chosen from the seed.
            let alive = NodeSet::from_nodes(
                n,
                (0..n)
                    .filter(|&i| !mix(seed, i as u64).is_multiple_of(5))
                    .map(NodeId::new),
            );
            (g, alive, seed)
        })
    })
}

/// Deterministic source picks (possibly repeated, possibly outside the
/// view) from the graph's universe.
fn pick_sources(n: usize, count: usize, seed: u64) -> Vec<NodeId> {
    (0..count)
        .map(|i| NodeId::new((mix(seed, i as u64) % n as u64) as usize))
        .collect()
}

/// Splitmix-style hash used for deterministic instance derivation.
fn mix(seed: u64, i: u64) -> u64 {
    let mut h = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 31;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 29;
    h
}

/// Asserts one lane of `run` against a fresh sequential BFS from `src`.
fn assert_lane_matches_bfs<A: Adjacency>(
    view: &A,
    run: &algo::MsBfsRun<'_>,
    lane: usize,
    src: NodeId,
    max_dist: u32,
) -> Result<(), TestCaseError> {
    let mut ws = TraversalWorkspace::new();
    let bfs = bfs_bounded_in(&mut ws, view, [src], max_dist);
    prop_assert_eq!(
        run.reached_count(lane),
        bfs.reached_count(),
        "lane {} reach count",
        lane
    );
    prop_assert_eq!(
        run.eccentricity(lane),
        bfs.eccentricity(),
        "lane {} eccentricity",
        lane
    );
    for vi in 0..view.universe() {
        let v = NodeId::new(vi);
        prop_assert_eq!(
            run.reached(v, lane),
            bfs.reached(v),
            "lane {} reached({})",
            lane,
            vi
        );
        prop_assert_eq!(run.dist(v, lane), bfs.dist(v), "lane {} dist({})", lane, vi);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unbounded MS-BFS ≡ per-source BFS on full and subset views,
    /// lane by lane, including out-of-view sources (dead lanes).
    #[test]
    fn msbfs_lanes_match_sequential_bfs(inst in arb_instance()) {
        let (g, alive, seed) = inst;
        let view = g.view(&alive);
        let sources = pick_sources(g.n(), 1 + (seed % MS_LANES as u64) as usize, seed);
        let mut ws = TraversalWorkspace::new();
        let run = msbfs_in(&mut ws, &view, &sources);
        prop_assert_eq!(run.lanes(), sources.len());
        for (lane, &src) in sources.iter().enumerate() {
            assert_lane_matches_bfs(&view, &run, lane, src, u32::MAX)?;
        }
    }

    /// Bounded MS-BFS ≡ per-source bounded BFS for small radii
    /// (including radius 0: sources only).
    #[test]
    fn bounded_msbfs_matches_bounded_bfs(
        inst in arb_instance(),
        max_dist in 0u32..5,
    ) {
        let (g, alive, seed) = inst;
        let view = g.view(&alive);
        let sources = pick_sources(g.n(), 1 + (seed % 7) as usize, seed);
        let mut ws = TraversalWorkspace::new();
        let run = msbfs_bounded_in(&mut ws, &view, &sources, max_dist);
        for (lane, &src) in sources.iter().enumerate() {
            assert_lane_matches_bfs(&view, &run, lane, src, max_dist)?;
        }
    }

    /// Targeted MS-BFS: every lane reports the same distance to every
    /// target that its own early-exiting `bfs_to_in` would, and the
    /// same residual target count.
    #[test]
    fn targeted_msbfs_matches_bfs_to(inst in arb_instance()) {
        let (g, alive, seed) = inst;
        let view = g.view(&alive);
        let sources = pick_sources(g.n(), 1 + (seed % 5) as usize, seed);
        let targets = NodeSet::from_nodes(g.n(), pick_sources(g.n(), 1 + (seed % 9) as usize, !seed));
        let mut ws = TraversalWorkspace::new();
        let run = msbfs_to_in(&mut ws, &view, &sources, &targets);
        let mut seq_ws = TraversalWorkspace::new();
        for (lane, &src) in sources.iter().enumerate() {
            let bfs = bfs_to_in(&mut seq_ws, &view, [src], &targets);
            let mut missing = 0usize;
            for t in targets.iter() {
                prop_assert_eq!(
                    run.reached(t, lane),
                    bfs.reached(t),
                    "lane {} target {} reach",
                    lane,
                    t.index()
                );
                prop_assert_eq!(run.dist(t, lane), bfs.dist(t), "lane {} target dist", lane);
                if !bfs.reached(t) {
                    missing += 1;
                }
            }
            prop_assert_eq!(run.targets_remaining(lane), missing, "lane {} residual", lane);
        }
    }

    /// Set-seeded MS-BFS ≡ multi-source BFS per lane: distances,
    /// eccentricities, and the cumulative ball census (the lane's own
    /// census, not the batch's padded one).
    #[test]
    fn set_lanes_match_multisource_bfs(inst in arb_instance()) {
        let (g, alive, seed) = inst;
        let view = g.view(&alive);
        // Two disjoint halves of the universe, hash-dealt.
        let mut halves = [NodeSet::empty(g.n()), NodeSet::empty(g.n())];
        for v in pick_sources(g.n(), g.n().max(2), seed) {
            let side = (v.index() ^ (seed as usize)) & 1;
            halves[side].insert(v);
        }
        prop_assume!(!halves[0].is_empty() && !halves[1].is_empty());
        let mut ws = TraversalWorkspace::new();
        let run = msbfs_sets_bounded_in(&mut ws, &view, &[&halves[0], &halves[1]], u32::MAX);
        let mut seq_ws = TraversalWorkspace::new();
        for (lane, half) in halves.iter().enumerate() {
            let bfs = bfs_in(&mut seq_ws, &view, half.iter());
            prop_assert_eq!(run.eccentricity(lane), bfs.eccentricity(), "lane {} ecc", lane);
            prop_assert_eq!(run.reached_count(lane), bfs.reached_count());
            for vi in 0..g.n() {
                let v = NodeId::new(vi);
                prop_assert_eq!(run.dist(v, lane), bfs.dist(v), "lane {} dist({})", lane, vi);
            }
            for (r, &ball) in bfs.ball_sizes().iter().enumerate() {
                prop_assert_eq!(
                    run.ball_size(lane, r as u32),
                    ball,
                    "lane {} ball({})",
                    lane,
                    r
                );
            }
        }
    }

    /// The ragged multi-batch helpers (all `n` view nodes as sources,
    /// crossing the 64-lane boundary when `n > 64`) agree with their
    /// per-source definitions.
    #[test]
    fn multi_batch_helpers_match_per_source(
        inst in arb_instance(),
        wide in prop::bool::ANY,
    ) {
        let (g, alive, _seed) = inst;
        // Optionally blow the instance past one batch by tiling it.
        let (g, alive) = if wide {
            let n = g.n();
            let shifted = g
                .edges()
                .flat_map(|(u, v)| {
                    [(u.index(), v.index()), (u.index() + n, v.index() + n)]
                })
                .collect::<Vec<_>>();
            let g2 = Graph::from_edges(2 * n, shifted).unwrap();
            let alive2 = NodeSet::from_nodes(
                2 * n,
                (0..2 * n).filter(|&i| alive.contains(NodeId::new(i % n))).map(NodeId::new),
            );
            (g2, alive2)
        } else {
            (g, alive)
        };
        let view = g.view(&alive);
        let mut ws = TraversalWorkspace::new();
        let sources: Vec<NodeId> = view.nodes().collect();
        let eccs = algo::eccentricities_in(&view, &sources, &mut ws);
        for (i, &src) in sources.iter().enumerate() {
            prop_assert_eq!(eccs[i], algo::eccentricity_in(&view, src, &mut ws));
        }
        let pairwise = algo::pairwise_distances_in(&view, &mut ws);
        let expect_diam = pairwise
            .iter()
            .flatten()
            .filter(|&&d| d != algo::UNREACHED)
            .max()
            .copied();
        prop_assert_eq!(algo::diameter_exact_in(&view, &mut ws), expect_diam);
        for &src in sources.iter() {
            let bfs = bfs_in(&mut ws, &view, [src]);
            // Rows only compare on live columns; dead rows/columns stay
            // UNREACHED by construction (checked in unit tests).
            for (vi, &d) in pairwise[src.index()].iter().enumerate() {
                prop_assert_eq!(d, bfs.dist(NodeId::new(vi)));
            }
        }
    }
}
