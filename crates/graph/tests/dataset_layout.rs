//! Property and corruption tests for the ingestion layer and the
//! space-filling-curve relabelings.
//!
//! Three families:
//!
//! 1. **Loader equivalence** — a plain edge list, its gzip twin (built
//!    with the crate's own stored-block writer), and the in-memory
//!    builder all produce bit-identical graphs.
//! 2. **Cache round-trip** — `write_cache` / `read_cache` is the
//!    identity on arbitrary graphs, weighted or not, and any
//!    single-bit flip or truncation of the file surfaces as a clean
//!    `Stale`/`Cache` error, never a panic or a silently wrong graph.
//! 3. **Relabeling isomorphism** — `Graph::relabeled` under every
//!    `NodeOrder` is a permutation of the same graph: edges map back
//!    through `old_of` to exactly the original edge set, per-edge
//!    weights survive, and external identifiers travel with their
//!    nodes.

use proptest::prelude::*;
use sdnd_graph::dataset::{self, DatasetError, LoadOptions};
use sdnd_graph::{Graph, NodeId, NodeOrder};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::PathBuf;

fn dir() -> PathBuf {
    let d = std::env::temp_dir().join(format!("sdnd_dataset_layout_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Strategy: a random simple graph plus optional per-edge weights.
fn arb_weighted_graph() -> impl Strategy<Value = Graph> {
    (2usize..32, prop::bool::ANY).prop_flat_map(|(n, weighted)| {
        let edges = prop::collection::vec((0..n, 0..n, 0.1f64..100.0), 0..(n * 2));
        edges.prop_map(move |raw| {
            let simple = raw.into_iter().filter(|&(u, v, _)| u != v);
            if weighted {
                Graph::from_weighted_edges(n, simple).expect("simple edges are valid")
            } else {
                Graph::from_edges(n, simple.map(|(u, v, _)| (u, v))).expect("valid")
            }
        })
    })
}

/// The canonical undirected weighted edge set of `g`, with node ids
/// translated through `map` (identity when `map` is `None`).
fn edge_set(g: &Graph, map: Option<&dyn Fn(NodeId) -> NodeId>) -> BTreeSet<(usize, usize, u64)> {
    g.weighted_edges()
        .map(|(u, v, w)| {
            let (u, v) = match map {
                Some(f) => (f(u), f(v)),
                None => (u, v),
            };
            let (a, b) = (u.index().min(v.index()), u.index().max(v.index()));
            (a, b, w.to_bits())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Writing a graph as text and loading it back — plain or gzip —
    /// reproduces the graph the in-memory builder makes.
    #[test]
    fn text_and_gzip_loaders_agree_with_the_builder(g in arb_weighted_graph(), seed in 0u64..1000) {
        let mut body = String::new();
        for (u, v, w) in g.weighted_edges() {
            if g.is_weighted() {
                writeln!(body, "{} {} {w}", u.index(), v.index()).unwrap();
            } else {
                writeln!(body, "{} {}", u.index(), v.index()).unwrap();
            }
        }
        let txt = dir().join(format!("agree_{seed}_{}.txt", g.n()));
        std::fs::write(&txt, body.as_bytes()).unwrap();
        let gz = dir().join(format!("agree_{seed}_{}.txt.gz", g.n()));
        std::fs::write(&gz, dataset::gzip_stored(body.as_bytes())).unwrap();

        // Isolated nodes don't appear in an edge list, so pin `n`.
        let opts = LoadOptions { nodes: Some(g.n()), ..Default::default() };
        let from_txt = dataset::load_edge_list(&txt, &opts).unwrap();
        let from_gz = dataset::load_edge_list(&gz, &opts).unwrap();
        prop_assert_eq!(&from_txt, &g);
        prop_assert_eq!(&from_gz, &g);
    }

    /// `write_cache` then `read_cache` is the identity, stamped or not.
    #[test]
    fn cache_round_trips_arbitrary_graphs(g in arb_weighted_graph(), seed in 0u64..1000) {
        let path = dir().join(format!("roundtrip_{seed}_{}.csrbin", g.n()));
        dataset::write_cache(&path, &g, None).unwrap();
        let back = dataset::read_cache(&path, None).unwrap();
        prop_assert_eq!(&back, &g);
        prop_assert_eq!(back.is_weighted(), g.is_weighted());

        // A stamped cache reads back under the matching stamp and
        // reports stale under any other.
        let stamp = dataset::SourceStamp { len: 42, mtime_secs: 7, mtime_nanos: 9 };
        dataset::write_cache(&path, &g, Some(&stamp)).unwrap();
        prop_assert_eq!(&dataset::read_cache(&path, Some(&stamp)).unwrap(), &g);
        let other = dataset::SourceStamp { len: 43, ..stamp };
        prop_assert!(matches!(
            dataset::read_cache(&path, Some(&other)),
            Err(DatasetError::Stale { .. })
        ));
    }

    /// Relabeling is an isomorphism: same node count, same edge set
    /// after mapping back, weights and external ids carried along, and
    /// the permutation arrays are mutually inverse.
    #[test]
    fn relabeling_is_a_graph_isomorphism(g in arb_weighted_graph()) {
        let original = edge_set(&g, None);
        for order in NodeOrder::ALL {
            let (gl, relab) = g.relabeled(order);
            prop_assert_eq!(gl.n(), g.n());
            prop_assert_eq!(gl.m(), g.m());
            prop_assert_eq!(gl.is_weighted(), g.is_weighted());
            // to_new and to_old are mutually inverse permutations.
            for v in g.nodes() {
                prop_assert_eq!(relab.old_of(relab.new_of(v)), v);
                prop_assert_eq!(gl.id_of(relab.new_of(v)), g.id_of(v));
            }
            // The edge multiset maps back exactly, weights included.
            let mapped = edge_set(&gl, Some(&|v| relab.old_of(v)));
            prop_assert_eq!(mapped, original.clone());
        }
    }
}

/// Every single-bit flip and every truncation of a cache file must be
/// rejected — as `Cache` (corrupt) or `Stale` (version byte) — and
/// must never panic or produce a graph. The CRC32 catches all
/// single-bit errors by construction; this exercises the whole decode
/// path against each of them anyway, including flips inside the
/// checksum itself and flips in the header before the checksum is
/// even consulted.
#[test]
fn corrupted_caches_fail_closed() {
    let g = Graph::from_weighted_edges(
        6,
        [
            (0usize, 1usize, 1.5f64),
            (1, 2, 2.5),
            (2, 3, 0.5),
            (3, 4, 4.0),
            (4, 5, 1.0),
            (5, 0, 3.0),
            (1, 4, 2.0),
        ],
    )
    .unwrap();
    let path = dir().join("corrupt_sweep.csrbin");
    let stamp = dataset::SourceStamp {
        len: 123,
        mtime_secs: 456,
        mtime_nanos: 789,
    };
    dataset::write_cache(&path, &g, Some(&stamp)).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    assert_eq!(&dataset::read_cache(&path, Some(&stamp)).unwrap(), &g);

    let mutant = dir().join("corrupt_mutant.csrbin");
    let mut rejected_bits = 0usize;
    for byte in 0..pristine.len() {
        for bit in 0..8 {
            let mut copy = pristine.clone();
            copy[byte] ^= 1 << bit;
            std::fs::write(&mutant, &copy).unwrap();
            match dataset::read_cache(&mutant, Some(&stamp)) {
                Err(DatasetError::Cache { .. }) | Err(DatasetError::Stale { .. }) => {
                    rejected_bits += 1;
                }
                Err(other) => panic!("byte {byte} bit {bit}: unexpected error kind {other}"),
                Ok(_) => panic!("byte {byte} bit {bit}: flipped cache was accepted"),
            }
        }
    }
    assert_eq!(rejected_bits, pristine.len() * 8);

    // Truncations: every proper prefix fails closed the same way.
    for len in 0..pristine.len() {
        std::fs::write(&mutant, &pristine[..len]).unwrap();
        match dataset::read_cache(&mutant, Some(&stamp)) {
            Err(DatasetError::Cache { .. }) | Err(DatasetError::Stale { .. }) => {}
            Err(other) => panic!("truncation to {len}: unexpected error kind {other}"),
            Ok(_) => panic!("truncation to {len} bytes was accepted"),
        }
    }
}
