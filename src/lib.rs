//! # SDND — Strong-Diameter Network Decomposition
//!
//! A Rust reproduction of *Strong-Diameter Network Decomposition* by
//! Yi-Jun Chang and Mohsen Ghaffari (PODC 2021, arXiv:2102.09820): the
//! first polylogarithmic-round deterministic CONGEST algorithm computing a
//! strong-diameter network decomposition with polylogarithmic parameters,
//! together with the full substrate it runs on (a CONGEST round
//! simulator), the weak-diameter carving it consumes as a black box, and
//! the randomized/LOCAL baselines it is compared against.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! namespace. See the individual modules for details:
//!
//! - [`graph`] — CSR graphs, generators, traversals ([`sdnd_graph`]).
//! - [`congest`] — the CONGEST/LOCAL round simulator ([`sdnd_congest`]).
//! - [`clustering`] — decomposition/carving types, contracts, validators
//!   ([`sdnd_clustering`]).
//! - [`weak`] — deterministic weak-diameter ball carving (RG20/GGR21) and
//!   the LS93 randomized carving ([`sdnd_weak`]).
//! - [`core`] — the paper's contribution: Theorems 2.1–2.3, Lemma 3.1,
//!   Theorems 3.2–3.4 ([`sdnd_core`]).
//! - [`baselines`] — MPX13/EN16 random shifts, the ABCP96 LOCAL
//!   transformation, and the sequential existential carving
//!   ([`sdnd_baselines`]).
//! - [`serve`] — the `sdnd serve` daemon: graphs load once, requests
//!   (decompose, carve, point queries, validate) arrive over a framed
//!   line protocol with cooperative deadlines, admission control, and
//!   an LRU of finished decompositions ([`sdnd_serve`]).
//!
//! # Quickstart
//!
//! ```
//! use sdnd::prelude::*;
//!
//! // A 16x16 grid network.
//! let g = sdnd::graph::gen::grid(16, 16);
//!
//! // Deterministic strong-diameter network decomposition (Theorem 2.3).
//! let (decomp, ledger) = sdnd::core::decompose_strong(&g, &Params::default())?;
//!
//! // Every node is clustered, same-colored clusters are non-adjacent, and
//! // every cluster has small strong diameter.
//! let report = validate_decomposition(&g, &decomp);
//! assert!(report.is_valid());
//! println!(
//!     "colors = {}, max strong diameter = {:?}, rounds = {}",
//!     decomp.num_colors(),
//!     report.max_strong_diameter,
//!     ledger.rounds()
//! );
//! # Ok::<(), sdnd::core::CoreError>(())
//! ```

pub use sdnd_baselines as baselines;
pub use sdnd_clustering as clustering;
pub use sdnd_congest as congest;
pub use sdnd_core as core;
pub use sdnd_graph as graph;
pub use sdnd_serve as serve;
pub use sdnd_weak as weak;

/// Commonly used items, re-exported for `use sdnd::prelude::*`.
pub mod prelude {
    pub use sdnd_clustering::{
        validate_carving, validate_carving_approx, validate_decomposition,
        validate_decomposition_approx, BallCarving, NetworkDecomposition, StrongCarver, WeakCarver,
    };
    pub use sdnd_congest::{CostModel, RoundLedger};
    pub use sdnd_core::Params;
    pub use sdnd_graph::algo::HyperBallParams;
    pub use sdnd_graph::{Adjacency, Graph, NodeId, NodeSet};
}
