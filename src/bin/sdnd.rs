//! `sdnd` — command-line interface to the decomposition stack.
//!
//! A downstream-friendly entry point: generate graphs, run any of the
//! carvers/decomposers on an edge-list file, validate the output, and
//! export the clustering as CSV.
//!
//! ```console
//! $ sdnd gen --family grid --n 256 > grid.edges
//! $ sdnd decompose --algorithm thm2.3 --input grid.edges --output clusters.csv
//! $ sdnd carve --algorithm mpx13 --eps 0.25 --input grid.edges
//! ```
//!
//! Edge-list format: one `u v` pair per line (0-based indices), with an
//! optional third column holding the edge weight (`u v w`); lines
//! starting with `#` are ignored; node count is one past the largest
//! index (or `--nodes`). The `--weights` flag controls the metric:
//! `uniform:lo,hi` draws seeded weights (integer-valued when both
//! bounds are integers), `file` requires the third column, `unit`
//! stores weight 1 on every edge, and by default the third column is
//! used when present.

use sdnd::baselines::{Abcp96, Mpx13, SequentialGreedy};
use sdnd::congest::{primitives, Engine};
use sdnd::core::Params;
use sdnd::graph::dataset::{self, CacheStatus, LoadOptions, SourceStamp, WeightMode};
use sdnd::graph::{NodeOrder, Relabeling};
use sdnd::prelude::*;
use sdnd::weak::{Ls93, Rg20};
use sdnd_clustering::{metrics, StrongCarver, WeakCarver};
use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.msg);
            if e.show_usage {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

/// A CLI failure. Argument and usage problems reprint the usage text;
/// runtime diagnostics (I/O failures, engine errors such as
/// `EngineError::RoundLimitExceeded`, round-budget violations) stand
/// alone.
#[derive(Debug)]
struct CliError {
    msg: String,
    show_usage: bool,
}

impl CliError {
    fn runtime(msg: impl Into<String>) -> Self {
        CliError {
            msg: msg.into(),
            show_usage: false,
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError {
            msg,
            show_usage: true,
        }
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::from(msg.to_string())
    }
}

const USAGE: &str = "\
usage: sdnd <command> [options]

commands:
  gen        --family <grid|cycle|path|tree|gnp|expander|barrier|rmat|geometric>
             --n <N> [--seed S] [--weights uniform:lo,hi|unit]
             [--edge-factor F] [--radius R] [--output edges.txt] [--cache]
             writes an edge list to stdout or --output (weighted: `u v w`
             lines); rmat (n rounds up to a power of two; --edge-factor
             attempted edges per node, default 8) and geometric
             (--radius, default the ~6-neighbor threshold) stream to
             millions of edges; --cache also writes the binary CSR form
             next to --output
  ingest     <file> [--nodes N] [--weights file] [--layout L]
             parses an edge list (gzip `.gz` transparently), writes the
             binary CSR cache next to it (`<file>.csrbin`), and reports
             load statistics; a second ingest hits the cache and skips
             the text parse entirely
  decompose  --algorithm <thm2.3|thm3.4|en16|sequential|abcp96|rg20|ls93>
             --input <edges.txt> [--nodes N] [--seed S] [--output out.csv]
             [--max-rounds R] [--weights uniform:lo,hi|file|unit]
             [--layout L] [--cache]
             computes a network decomposition and prints its quality;
             weighted inputs grow weighted balls (thm2.3) and report
             weighted diameters; fails cleanly if the simulated cost
             exceeds R rounds (post-hoc: the local computation runs to
             completion)
  carve      --algorithm <thm2.2|thm3.3|mpx13|rg20|ggr21|ls93|sequential|abcp96>
             --eps <f> --input <edges.txt> [--nodes N] [--seed S] [--output out.csv]
             [--weights uniform:lo,hi|file|unit] [--layout L] [--cache]
             computes a single ball carving
  simulate   --input <edges.txt> [--source V] [--threads T] [--max-rounds R]
             [--nodes N] [--repeat K] [--weights uniform:lo,hi|file|unit]
             [--layout L] [--cache] [--lane sync|async]
             [--faults drop=p,dup=q,delay=d,crash=k] [--fault-seed S]
             [--fault-report F]
             runs a BFS flood on the message-passing engine — the
             weighted SpBfs kernel when the graph carries weights (T > 1
             selects the deterministic parallel stepping lane); K > 1
             repeats the run on one engine session (slot arenas built
             once, reused) and reports the amortized per-run wall time.
             --lane async runs node tasks over real channels under an
             α-synchronizer with a seeded fault adversary (T = worker
             threads; --max-rounds bounds synchronizer pulses, default
             1000000); zero-fault async runs are cross-checked
             bit-for-bit against the synchronous engine, faulted runs
             are label-validated and exit nonzero with a structured
             diagnostic when the faults corrupted the outcome;
             --fault-report writes the per-class fault counters as CSV
  validate   --input <edges.txt> --clusters <out.csv> [--nodes N]
             [--weights uniform:lo,hi|file|unit] [--approx[=p]]
             [--layout L] [--cache] [--timing]
             re-checks a previously exported clustering (non-adjacency,
             connectivity, color separation); weighted inputs also
             report exact Dijkstra-oracle cluster diameters; --approx
             swaps the exact diameter sweep for HyperBall cardinality
             sketches with 2^p registers per node (default p = 6) —
             structural checks stay exact, diameters become one-sided
             estimates with a reported error band; --timing appends the
             per-phase wall clock (load, structural gates, diameter
             sweeps, total) to the exact-tier report
  serve      [--socket /path.sock] [--queue N] [--lru N] [--graph SPEC]
             runs the decomposition daemon: graphs load once, then a
             newline-framed request mix (load, decompose, carve,
             cluster-of, distance-in-cluster, validate[:approx], stats,
             shutdown) is served over stdin/stdout (default) or a Unix
             socket (--socket; the path must not exist). Finished
             decompositions live in an LRU keyed by (graph content
             hash, algorithm, eps, seed). `deadline=<ms>` on any
             request arms a cooperative wall-clock budget checked at
             pipeline phase boundaries (`err cancelled phase=...`);
             beyond --queue (default 32) in-flight requests, admission
             sheds with `err overloaded retry-after-ms=...`; `validate`
             under a tight budget degrades exact -> approx and reports
             the answering tier; a panicking request poisons only the
             carving session, which is rebuilt. --graph preloads a
             graph (a path, or grid:RxC | cycle:N | path:N | gnp:N:SEED)

weights:
  uniform:lo,hi  seeded per-edge weights, integer-valued when lo and hi
                 are integers (overrides any third column)
  file           use the edge list's third column (error if absent)
  unit           store weight 1 on every edge (weighted unit metric)
  (default)      third column when present, else unweighted

layouts (--layout, default natural):
  natural        keep the file's node labels
  bfs            BFS visitation order from per-component anchors
  hilbert        Hilbert curve through a BFS-coordinate embedding
  morton         Morton (Z-order) curve through the same embedding
  relabeling is internal: CSV exports, --source, and --clusters always
  speak the file's original node ids

caching (--cache):
  load through the binary CSR cache next to the input (`.csrbin`),
  writing it on the first (cold) run; stale caches are re-parsed";

fn run(args: &[String]) -> Result<(), CliError> {
    let cmd = args.first().ok_or("missing command")?;
    if cmd == "ingest" {
        // `ingest` takes its file positionally: `sdnd ingest edges.txt`.
        let path = args
            .get(1)
            .filter(|p| !p.starts_with("--"))
            .ok_or("ingest wants a file: sdnd ingest <edges.txt> [options]")?;
        let opts = parse_opts(&args[2..])?;
        return cmd_ingest(path, &opts);
    }
    let opts = parse_opts(&args[1..])?;
    match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "decompose" => cmd_decompose(&opts),
        "carve" => cmd_carve(&opts),
        "simulate" => cmd_simulate(&opts),
        "validate" => cmd_validate(&opts),
        "serve" => cmd_serve(&opts),
        other => Err(format!("unknown command `{other}`").into()),
    }
}

struct Opts {
    map: std::collections::HashMap<String, String>,
}

impl Opts {
    fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }
    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }
    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} wants an integer")),
        }
    }
    fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} wants a number")),
        }
    }
    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        self.u64_opt(key).map(|v| v.unwrap_or(default))
    }
    fn u64_opt(&self, key: &str) -> Result<Option<u64>, String> {
        self.get(key)
            .map(|v| v.parse().map_err(|_| format!("--{key} wants an integer")))
            .transpose()
    }
}

/// Options that may appear bare (`--approx`, `--cache`) or inline
/// (`--approx=8`); everything else is a strict `--key value` pair.
const BARE_FLAGS: &[&str] = &["approx", "cache", "timing"];

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut map = std::collections::HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got `{}`", args[i]))?;
        if let Some((k, v)) = key.split_once('=') {
            map.insert(k.to_string(), v.to_string());
            i += 1;
            continue;
        }
        if BARE_FLAGS.contains(&key) {
            // Presence flag: an empty value means "use the default".
            map.insert(key.to_string(), String::new());
            i += 1;
            continue;
        }
        let val = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), val.clone());
        i += 2;
    }
    Ok(Opts { map })
}

fn cmd_gen(opts: &Opts) -> Result<(), CliError> {
    let family = opts.require("family")?;
    let n = opts.usize_or("n", 256)?;
    let seed = opts.usize_or("seed", 42)? as u64;
    let g = match family {
        "grid" => {
            let side = (n as f64).sqrt().round().max(2.0) as usize;
            sdnd::graph::gen::grid(side, side)
        }
        "cycle" => sdnd::graph::gen::cycle(n),
        "path" => sdnd::graph::gen::path(n),
        "tree" => sdnd::graph::gen::random_tree(n, seed),
        "gnp" => sdnd::graph::gen::gnp_connected(n, 6.0 / n.max(7) as f64, seed),
        "expander" => sdnd::graph::gen::random_regular_connected(n - n % 2, 4, seed)
            .map_err(|e| e.to_string())?,
        "barrier" => sdnd::graph::gen::barrier_graph(n, 0.5, 4, seed)
            .map_err(|e| e.to_string())?
            .into_graph(),
        "rmat" => {
            // `--n` rounds up to the RMAT power-of-two node count.
            let scale = n.max(2).next_power_of_two().trailing_zeros();
            let edge_factor = opts.usize_or("edge-factor", 8)?;
            sdnd::graph::gen::rmat(scale, edge_factor, seed).map_err(|e| e.to_string())?
        }
        "geometric" => {
            // Default radius targets mean degree ~6 (pi r^2 n = 6):
            // comfortably above the connectivity threshold, sparse
            // enough that m stays linear in n.
            let radius = opts.f64_or("radius", (6.0 / (std::f64::consts::PI * n as f64)).sqrt())?;
            sdnd::graph::gen::random_geometric(n, radius, seed).map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown family `{other}`").into()),
    };
    let spec = WeightSpec::parse(opts)?;
    if spec == WeightSpec::File {
        return Err("--weights file makes no sense for gen (there is no input file)".into());
    }
    let g = match spec.dist() {
        Some(dist) => sdnd::graph::gen::reweight(&g, dist, seed).map_err(|e| e.to_string())?,
        None => g,
    };
    let output = opts.get("output");
    if opts.get("cache").is_some() && output.is_none() {
        return Err(
            "--cache needs --output (the binary cache sits next to the written file)".into(),
        );
    }
    let runtime = |e: std::io::Error| CliError::runtime(e.to_string());
    let stdout = std::io::stdout();
    let mut out: Box<dyn std::io::Write> = match output {
        Some(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| CliError::runtime(format!("{path}: {e}")))?,
        )),
        None => Box::new(stdout.lock()),
    };
    writeln!(out, "# sdnd {family} n={} m={}", g.n(), g.m()).map_err(runtime)?;
    if g.is_weighted() {
        for (u, v, w) in g.weighted_edges() {
            writeln!(out, "{u} {v} {w}").map_err(runtime)?;
        }
    } else {
        for (u, v) in g.edges() {
            writeln!(out, "{u} {v}").map_err(runtime)?;
        }
    }
    out.flush().map_err(runtime)?;
    drop(out);
    if let Some(path) = output {
        println!("edge list:      {path} (n = {}, m = {})", g.n(), g.m());
        if opts.get("cache").is_some() {
            // The graph is already in memory; caching it here makes the
            // first downstream `--cache` load warm.
            let source = Path::new(path);
            let stamp = SourceStamp::of(source).map_err(|e| CliError::runtime(e.to_string()))?;
            let cache = dataset::cache_path_for(source);
            dataset::write_cache(&cache, &g, Some(&stamp))
                .map_err(|e| CliError::runtime(e.to_string()))?;
            println!("csr cache:      {}", cache.display());
        }
    }
    Ok(())
}

fn cmd_ingest(path: &str, opts: &Opts) -> Result<(), CliError> {
    let spec = WeightSpec::parse(opts)?;
    if spec.dist().is_some() {
        return Err(
            "--weights unit/uniform are load-time transforms; ingest caches the file's \
             own content (use `--weights file` or the default)"
                .into(),
        );
    }
    let load_opts = LoadOptions {
        nodes: opts
            .get("nodes")
            .map(|v| {
                v.parse()
                    .map_err(|_| "--nodes wants an integer".to_string())
            })
            .transpose()?,
        weights: match spec {
            WeightSpec::File => WeightMode::Require,
            _ => WeightMode::Auto,
        },
    };
    let order = parse_layout(opts)?;
    let started = std::time::Instant::now();
    let (g, status) = dataset::load_cached(Path::new(path), &load_opts, true)
        .map_err(|e| CliError::runtime(e.to_string()))?;
    let elapsed = started.elapsed();
    println!("graph:          n = {}, m = {}", g.n(), g.m());
    println!(
        "metric:         {}",
        if g.is_weighted() {
            "weighted (third column)"
        } else {
            "hop (no weight column)"
        }
    );
    println!(
        "cache:          {} ({})",
        dataset::cache_path_for(Path::new(path)).display(),
        match status {
            CacheStatus::Hit => "hit — text parse skipped",
            CacheStatus::Written => "written (cold parse)",
            CacheStatus::Bypassed => "bypassed",
        }
    );
    println!("load time:      {:.3} ms", elapsed.as_secs_f64() * 1e3);
    if !matches!(order, NodeOrder::Natural) {
        // Relabel once so the layout cost is visible to the user; the
        // cache itself always stores the file's natural labels.
        let started = std::time::Instant::now();
        let (rg, _) = g.relabeled(order);
        println!(
            "relabel:        {:?} in {:.3} ms (max degree {})",
            order,
            started.elapsed().as_secs_f64() * 1e3,
            rg.max_degree()
        );
    }
    Ok(())
}

/// How `--weights` asks for the metric of a loaded or generated graph.
#[derive(Debug, Clone, Copy, PartialEq)]
enum WeightSpec {
    /// No flag: use the edge list's third column when present.
    Auto,
    /// `unit`: store weight 1 on every edge.
    Unit,
    /// `file`: require the third column.
    File,
    /// `uniform:lo,hi`: seeded per-edge weights, integer-valued when
    /// both bounds are integers.
    Uniform { lo: f64, hi: f64 },
}

impl WeightSpec {
    fn parse(opts: &Opts) -> Result<WeightSpec, String> {
        let Some(spec) = opts.get("weights") else {
            return Ok(WeightSpec::Auto);
        };
        match spec {
            "unit" => Ok(WeightSpec::Unit),
            "file" => Ok(WeightSpec::File),
            _ => {
                let range = spec.strip_prefix("uniform:").ok_or_else(|| {
                    format!("--weights wants uniform:lo,hi, file, or unit; got `{spec}`")
                })?;
                let (lo, hi) = range
                    .split_once(',')
                    .ok_or_else(|| format!("--weights uniform wants `lo,hi`, got `{range}`"))?;
                let parse = |t: &str| -> Result<f64, String> {
                    t.parse()
                        .map_err(|_| format!("--weights uniform: bad bound `{t}`"))
                };
                Ok(WeightSpec::Uniform {
                    lo: parse(lo)?,
                    hi: parse(hi)?,
                })
            }
        }
    }

    /// The generator distribution for a `uniform` or `unit` spec.
    fn dist(&self) -> Option<sdnd::graph::gen::WeightDist> {
        use sdnd::graph::gen::WeightDist;
        match *self {
            WeightSpec::Unit => Some(WeightDist::Unit),
            WeightSpec::Uniform { lo, hi } => {
                // Only well-ordered non-negative integer bounds take the
                // integer branch — a reversed range must NOT saturate
                // into UniformInt{0,0}, it must fall through so the
                // distribution's own validation rejects it.
                if lo.fract() == 0.0 && hi.fract() == 0.0 && lo >= 0.0 && hi >= lo {
                    Some(WeightDist::UniformInt {
                        lo: lo as u64,
                        hi: hi as u64,
                    })
                } else {
                    Some(WeightDist::Uniform { lo, hi })
                }
            }
            WeightSpec::Auto | WeightSpec::File => None,
        }
    }
}

/// Parses `--layout` into a [`NodeOrder`] (default: `natural`).
fn parse_layout(opts: &Opts) -> Result<NodeOrder, String> {
    Ok(match opts.get("layout").unwrap_or("natural") {
        "natural" => NodeOrder::Natural,
        "bfs" => NodeOrder::Bfs,
        "hilbert" => NodeOrder::Hilbert,
        "morton" => NodeOrder::Morton,
        other => {
            return Err(format!(
                "--layout wants natural|bfs|hilbert|morton, got `{other}`"
            ))
        }
    })
}

/// Loads `--input` through the dataset layer (gzip and `.csrbin` inputs
/// transparent, `--cache` opt-in), applies `--weights`, and relabels
/// per `--layout`. The returned [`Relabeling`] maps between the file's
/// original ids and the in-memory ids; it is the identity for the
/// default natural layout.
fn load_graph(opts: &Opts) -> Result<(Graph, Relabeling), String> {
    let path = opts.require("input")?;
    let spec = WeightSpec::parse(opts)?;
    let seed = opts.u64_or("seed", 42)?;
    let order = parse_layout(opts)?;
    let load_opts = LoadOptions {
        nodes: opts
            .get("nodes")
            .map(|v| {
                v.parse()
                    .map_err(|_| "--nodes wants an integer".to_string())
            })
            .transpose()?,
        weights: match spec {
            WeightSpec::File => WeightMode::Require,
            WeightSpec::Auto => WeightMode::Auto,
            // `unit`/`uniform` replace whatever the file carried, so the
            // third column is never materialized.
            WeightSpec::Unit | WeightSpec::Uniform { .. } => WeightMode::Ignore,
        },
    };
    let source = Path::new(path);
    let g = if opts.get("cache").is_some() || source.extension().is_some_and(|e| e == "csrbin") {
        dataset::load_cached(source, &load_opts, opts.get("cache").is_some())
            .map(|(g, _)| g)
            .map_err(|e| e.to_string())?
    } else {
        dataset::load_edge_list(source, &load_opts).map_err(|e| e.to_string())?
    };
    let g = match spec.dist() {
        Some(dist) => sdnd::graph::gen::reweight(&g, dist, seed).map_err(|e| e.to_string())?,
        None => g,
    };
    Ok(g.relabeled(order))
}

/// Formats a weighted diameter: integers print clean, fractions with
/// three decimals.
fn fmt_weighted(d: Option<f64>) -> String {
    match d {
        None => "—".into(),
        Some(d) if d.fract() == 0.0 => format!("{}", d as u64),
        Some(d) => format!("{d:.3}"),
    }
}

fn write_clusters(
    path: &str,
    assignments: impl Iterator<Item = (NodeId, usize, u32)>,
) -> Result<(), String> {
    let mut s = String::from("node,cluster,color\n");
    for (v, c, col) in assignments {
        s.push_str(&format!("{v},{c},{col}\n"));
    }
    std::fs::write(path, s).map_err(|e| e.to_string())
}

fn cmd_decompose(opts: &Opts) -> Result<(), CliError> {
    // Validate the round budget up front — a bad flag must not cost a
    // full decomposition run.
    let round_budget = opts.u64_opt("max-rounds")?;
    let (g, relab) = load_graph(opts).map_err(CliError::runtime)?;
    let algorithm = opts.require("algorithm")?;
    let seed = opts.usize_or("seed", 42)? as u64;
    let params = Params::default();
    let mut ledger = RoundLedger::new();

    let d = match algorithm {
        "thm2.3" => sdnd::core::decompose_strong_with(&g, &params, &mut ledger),
        "thm3.4" => sdnd::core::decompose_strong_improved_with(&g, &params, &mut ledger),
        "en16" => sdnd::baselines::en16_decomposition(&g, seed, &mut ledger),
        "sequential" => sdnd_clustering::decompose_with_strong_carver(
            &g,
            &SequentialGreedy::new(),
            0.5,
            &mut ledger,
        ),
        "abcp96" => {
            sdnd_clustering::decompose_with_strong_carver(&g, &Abcp96::new(), 0.5, &mut ledger)
        }
        "rg20" => sdnd_clustering::decompose_with_weak_carver(&g, &Rg20::rg20(), 0.5, &mut ledger),
        "ls93" => {
            sdnd_clustering::decompose_with_weak_carver(&g, &Ls93::new(seed), 0.5, &mut ledger)
        }
        other => return Err(format!("unknown algorithm `{other}`").into()),
    };

    if let Some(limit) = round_budget {
        if ledger.rounds() > limit {
            // Post-hoc budget check: the local computation completed;
            // only the *simulated* CONGEST cost is over budget (the
            // genuine mid-run `EngineError::RoundLimitExceeded` path is
            // exercised by `simulate`, which drives the real engine).
            return Err(CliError::runtime(format!(
                "round budget exceeded: the simulated CONGEST execution needs {} rounds, \
                 over --max-rounds {limit}",
                ledger.rounds()
            )));
        }
    }

    let q = metrics::decomposition_quality(&g, &d);
    let report = sdnd_clustering::validate_decomposition(&g, &d);
    println!("graph:          n = {}, m = {}", g.n(), g.m());
    println!("algorithm:      {algorithm}");
    println!(
        "metric:         {}",
        if g.is_weighted() {
            "weighted (Dijkstra oracle)"
        } else {
            "hop (unweighted input)"
        }
    );
    println!("colors (C):     {}", q.colors);
    println!("clusters:       {}", q.clusters);
    println!(
        "strong D:       {}",
        q.max_strong_diameter.map_or("—".into(), |d| d.to_string())
    );
    println!(
        "weak D:         {}",
        q.max_weak_diameter.map_or("—".into(), |d| d.to_string())
    );
    if g.is_weighted() {
        println!(
            "w strong D:     {}",
            fmt_weighted(q.weighted_strong_diameter)
        );
        println!("w weak D:       {}", fmt_weighted(q.weighted_weak_diameter));
    }
    println!("rounds:         {}", ledger.rounds());
    println!("max msg bits:   {}", ledger.max_message_bits());
    println!(
        "color-valid:    {}",
        if report.is_valid_weak() { "yes" } else { "NO" }
    );
    if let Some(path) = opts.get("output") {
        // CSV exports always speak the file's original node ids, so a
        // clustering computed under any --layout validates against the
        // same input loaded under any other.
        write_clusters(
            path,
            g.nodes().map(|v| {
                let c = d.cluster_of(v).expect("decomposition covers all nodes");
                (relab.old_of(v), c.0 as usize, d.color(c))
            }),
        )
        .map_err(CliError::runtime)?;
        println!("clusters csv:   {path}");
    }
    Ok(())
}

fn cmd_carve(opts: &Opts) -> Result<(), CliError> {
    let (g, relab) = load_graph(opts).map_err(CliError::runtime)?;
    let algorithm = opts.require("algorithm")?;
    let eps = opts.f64_or("eps", 0.5)?;
    if !(eps > 0.0 && eps < 1.0) {
        return Err(format!("--eps must lie in (0, 1), got {eps}").into());
    }
    let seed = opts.usize_or("seed", 42)? as u64;
    let alive = NodeSet::full(g.n());
    let params = Params::default();
    let mut ledger = RoundLedger::new();

    let carving = match algorithm {
        "thm2.2" => sdnd::core::strong_ball_carving(&g, &alive, eps, &params, &mut ledger),
        "thm3.3" => sdnd::core::strong_ball_carving_improved(&g, &alive, eps, &params, &mut ledger),
        "mpx13" => Mpx13::new(seed).carve_strong(&g, &alive, eps, &mut ledger),
        "sequential" => SequentialGreedy::new().carve_strong(&g, &alive, eps, &mut ledger),
        "abcp96" => Abcp96::new().carve_strong(&g, &alive, eps, &mut ledger),
        "rg20" => {
            Rg20::rg20()
                .carve_weak(&g, &alive, eps, &mut ledger)
                .into_parts()
                .0
        }
        "ggr21" => {
            Rg20::ggr21()
                .carve_weak(&g, &alive, eps, &mut ledger)
                .into_parts()
                .0
        }
        "ls93" => {
            Ls93::new(seed)
                .carve_weak(&g, &alive, eps, &mut ledger)
                .into_parts()
                .0
        }
        other => return Err(format!("unknown algorithm `{other}`").into()),
    };

    let q = metrics::carving_quality(&g, &carving);
    println!("graph:          n = {}, m = {}", g.n(), g.m());
    println!("algorithm:      {algorithm} (eps = {eps})");
    println!(
        "metric:         {}",
        if g.is_weighted() {
            "weighted (Dijkstra oracle)"
        } else {
            "hop (unweighted input)"
        }
    );
    println!("clusters:       {}", q.clusters);
    println!("dead fraction:  {:.4}", q.dead_fraction);
    println!(
        "strong D:       {}",
        q.max_strong_diameter.map_or("—".into(), |d| d.to_string())
    );
    println!(
        "weak D:         {}",
        q.max_weak_diameter.map_or("—".into(), |d| d.to_string())
    );
    if g.is_weighted() {
        println!(
            "w strong D:     {}",
            fmt_weighted(q.weighted_strong_diameter)
        );
        println!("w weak D:       {}", fmt_weighted(q.weighted_weak_diameter));
    }
    println!("rounds:         {}", ledger.rounds());
    if let Some(path) = opts.get("output") {
        write_clusters(
            path,
            g.nodes()
                .filter_map(|v| carving.cluster_of(v).map(|c| (relab.old_of(v), c, 0))),
        )
        .map_err(CliError::runtime)?;
        println!("clusters csv:   {path}");
    }
    Ok(())
}

fn cmd_simulate(opts: &Opts) -> Result<(), CliError> {
    let (g, relab) = load_graph(opts).map_err(CliError::runtime)?;
    let source = opts.usize_or("source", 0)?;
    if source >= g.n() {
        return Err(format!("--source {source} out of range (n = {})", g.n()).into());
    }
    // `--source` names the file's original id; the flood starts from its
    // in-memory counterpart.
    let source = relab.new_of(NodeId::new(source)).index();
    let threads = opts.usize_or("threads", 1)?;
    let max_rounds = opts.u64_or("max-rounds", 1_000_000)?;
    let repeat = opts.usize_or("repeat", 1)?;
    if repeat == 0 {
        return Err("--repeat must be at least 1".into());
    }
    match opts.get("lane").unwrap_or("sync") {
        "sync" => {}
        "async" => return simulate_async(opts, &g, source, threads, max_rounds, repeat),
        other => return Err(format!("unknown --lane `{other}` (sync|async)").into()),
    }
    for key in ["faults", "fault-seed", "fault-report"] {
        if opts.get(key).is_some() {
            return Err(format!("--{key} needs --lane async").into());
        }
    }

    let view = g.full_view();
    let cost = CostModel::congest_for(g.n());
    let engine = Engine::new(cost)
        .with_max_rounds(max_rounds)
        .with_threads(threads);

    // All repeats share one session: the slot arenas, reverse-edge table,
    // and shard layout are built once, so the amortized per-run time is
    // proportional to the protocol's traffic, not to m. Weighted inputs
    // run the SpBfs (distributed Bellman–Ford) kernel; unweighted inputs
    // the plain BFS kernel.
    let mut session = engine.session(&g);

    /// Runs `kernel` `repeat` times on one session, returning the last
    /// outcome's rounds/ledger plus the count of states matching
    /// `reached` (shared by the BFS and SpBfs arms, whose state types
    /// differ).
    fn run_repeated<P, F>(
        session: &mut sdnd::congest::EngineSession<'_>,
        view: &sdnd_graph::FullView<'_>,
        kernel: &P,
        repeat: usize,
        reached: F,
    ) -> Result<(u64, RoundLedger, usize), CliError>
    where
        P: sdnd::congest::Protocol + Sync,
        P::Msg: Send + Sync + 'static,
        P::State: Send,
        F: Fn(&P::State) -> bool,
    {
        let mut out = session
            .run(view, kernel)
            .map_err(|e| CliError::runtime(e.to_string()))?;
        for _ in 1..repeat {
            let rerun = session
                .run(view, kernel)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            debug_assert_eq!(rerun.rounds, out.rounds, "session reruns are deterministic");
            out = rerun;
        }
        let n = out.states.iter().flatten().filter(|s| reached(s)).count();
        Ok((out.rounds, out.ledger, n))
    }

    let started = std::time::Instant::now();
    let (rounds, run_ledger, reached) = if g.is_weighted() {
        let kernel = primitives::SpBfsKernel::new(&view, [NodeId::new(source)], f64::INFINITY);
        run_repeated(&mut session, &view, &kernel, repeat, |s| s.dist.is_some())?
    } else {
        let kernel = primitives::BfsKernel::new(&view, [NodeId::new(source)], u32::MAX);
        run_repeated(&mut session, &view, &kernel, repeat, |s| s.dist.is_some())?
    };
    let elapsed = started.elapsed();

    println!("graph:          n = {}, m = {}", g.n(), g.m());
    println!(
        "protocol:       {} flood from node {source}",
        if g.is_weighted() {
            "weighted sp-bfs (Bellman–Ford)"
        } else {
            "bfs"
        }
    );
    println!(
        "lane:           {}",
        if threads > 1 {
            format!("parallel x{threads}")
        } else {
            "sequential".into()
        }
    );
    println!("rounds:         {rounds}");
    println!("messages:       {}", run_ledger.messages());
    println!("total bits:     {}", run_ledger.total_bits());
    println!(
        "max msg bits:   {} (budget {})",
        run_ledger.max_message_bits(),
        cost.bits_per_message()
    );
    println!("reached:        {reached}");
    if repeat > 1 {
        println!("runs:           {repeat} (one engine session, arenas reused)");
        println!(
            "amortized:      {:.3} ms/run",
            elapsed.as_secs_f64() * 1e3 / repeat as f64
        );
    }
    Ok(())
}

/// Parses `--faults drop=p,dup=q,delay=d,crash=k` (any subset, any
/// order) plus `--fault-seed` into an [`Adversary`].
fn parse_adversary(opts: &Opts) -> Result<sdnd::congest::Adversary, CliError> {
    use sdnd::congest::Adversary;
    let seed = opts.u64_or("fault-seed", 42)?;
    let mut adversary = Adversary::new(seed);
    let Some(spec) = opts.get("faults") else {
        return Ok(adversary);
    };
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (knob, val) = part
            .split_once('=')
            .ok_or_else(|| format!("--faults: `{part}` is not knob=value"))?;
        fn parse<T: std::str::FromStr>(knob: &str, val: &str) -> Result<T, String> {
            val.parse()
                .map_err(|_| format!("--faults: `{val}` is not a number for {knob}"))
        }
        adversary = match knob {
            "drop" => adversary.with_drop_rate(parse(knob, val)?),
            "dup" => adversary.with_duplicate_rate(parse(knob, val)?),
            "delay" => adversary.with_max_delay(parse(knob, val)?),
            "crash" => adversary.with_crashes(parse(knob, val)?),
            other => {
                return Err(
                    format!("--faults: unknown knob `{other}` (drop|dup|delay|crash)").into(),
                )
            }
        };
    }
    Ok(adversary)
}

/// `sdnd simulate --lane async`: the same flood kernels over the
/// α-synchronizer lane with a seeded fault adversary. Zero-fault runs
/// are cross-checked bit-for-bit against the synchronous engine; faulted
/// runs are label-validated, and a corrupted outcome exits nonzero with
/// a structured [`FaultDiagnostic`](sdnd::congest::FaultDiagnostic).
fn simulate_async(
    opts: &Opts,
    g: &Graph,
    source: usize,
    workers: usize,
    max_pulses: u64,
    repeat: usize,
) -> Result<(), CliError> {
    use sdnd::congest::{run_async, AsyncConfig, FaultDiagnostic};

    let adversary = parse_adversary(opts)?;
    let zero_fault = adversary.is_zero_fault();
    let cfg = AsyncConfig::new(adversary)
        .with_workers(workers)
        .with_max_pulses(max_pulses);
    let view = g.full_view();
    let cost = CostModel::congest_for(g.n());
    let engine = Engine::new(cost);
    let source_node = NodeId::new(source);

    // The failure path is shared by both kernels: print the transport
    // accounting, then surface the typed error as a runtime diagnostic.
    let fail = |failure: Box<sdnd::congest::AsyncFailure>| {
        print!("{}", failure.report.summary_table());
        CliError::runtime(format!("async lane failed: {}", failure.error))
    };

    let started = std::time::Instant::now();
    let (rounds, run_ledger, reached, report, dists) = if g.is_weighted() {
        let kernel = primitives::SpBfsKernel::new(&view, [source_node], f64::INFINITY);
        let mut lane = run_async(&engine, &view, &kernel, &cfg).map_err(fail)?;
        for _ in 1..repeat {
            let rerun = run_async(&engine, &view, &kernel, &cfg).map_err(fail)?;
            debug_assert_eq!(rerun.outcome.rounds, lane.outcome.rounds);
            lane = rerun;
        }
        if zero_fault {
            let sync = engine
                .run(&view, &kernel)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            if lane.outcome.states != sync.states
                || lane.outcome.rounds != sync.rounds
                || lane.outcome.ledger != sync.ledger
            {
                return Err(CliError::runtime(
                    "internal error: zero-fault async run diverged from the synchronous engine",
                ));
            }
        }
        let dists: Vec<Option<f64>> = lane
            .outcome
            .states
            .iter()
            .map(|s| s.as_ref().and_then(|s| s.dist))
            .collect();
        let reached = dists.iter().flatten().count();
        (
            lane.outcome.rounds,
            lane.outcome.ledger,
            reached,
            lane.report,
            dists,
        )
    } else {
        let kernel = primitives::BfsKernel::new(&view, [source_node], u32::MAX);
        let mut lane = run_async(&engine, &view, &kernel, &cfg).map_err(fail)?;
        for _ in 1..repeat {
            let rerun = run_async(&engine, &view, &kernel, &cfg).map_err(fail)?;
            debug_assert_eq!(rerun.outcome.rounds, lane.outcome.rounds);
            lane = rerun;
        }
        if zero_fault {
            let sync = engine
                .run(&view, &kernel)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            if lane.outcome.states != sync.states
                || lane.outcome.rounds != sync.rounds
                || lane.outcome.ledger != sync.ledger
            {
                return Err(CliError::runtime(
                    "internal error: zero-fault async run diverged from the synchronous engine",
                ));
            }
        }
        let dists: Vec<Option<f64>> = lane
            .outcome
            .states
            .iter()
            .map(|s| s.as_ref().and_then(|s| s.dist).map(f64::from))
            .collect();
        let reached = dists.iter().flatten().count();
        (
            lane.outcome.rounds,
            lane.outcome.ledger,
            reached,
            lane.report,
            dists,
        )
    };
    let elapsed = started.elapsed();

    println!("graph:          n = {}, m = {}", g.n(), g.m());
    println!(
        "protocol:       {} flood from node {source}",
        if g.is_weighted() {
            "weighted sp-bfs (Bellman–Ford)"
        } else {
            "bfs"
        }
    );
    println!(
        "lane:           async x{workers} (α-synchronizer, fault seed {})",
        cfg.adversary.seed()
    );
    println!("pulses:         {rounds} (budget {max_pulses})");
    println!("messages:       {}", run_ledger.messages());
    println!("total bits:     {}", run_ledger.total_bits());
    println!(
        "max msg bits:   {} (budget {})",
        run_ledger.max_message_bits(),
        cost.bits_per_message()
    );
    println!("reached:        {reached}");
    if zero_fault {
        println!("cross-check:    bit-identical to the synchronous engine");
    }
    if repeat > 1 {
        println!("runs:           {repeat} (fresh channels and workers per run)");
        println!(
            "amortized:      {:.3} ms/run",
            elapsed.as_secs_f64() * 1e3 / repeat as f64
        );
    }
    print!("{}", report.summary_table());
    if let Some(path) = opts.get("fault-report") {
        std::fs::write(path, report.to_csv())
            .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
        println!("fault report:   {path}");
    }

    // Label validation: triangle-inequality consistency of the surviving
    // flood labels over non-crashed nodes. A violated edge means the
    // faults corrupted the outcome — structured diagnostic, nonzero exit.
    let mut crashed = vec![false; g.n()];
    for c in &report.crashed {
        crashed[c.node.index()] = true;
    }
    let mut violations = Vec::new();
    let tolerance = 1e-9;
    for (u, v) in g.edges() {
        if crashed[u.index()] || crashed[v.index()] {
            continue;
        }
        let w = if g.is_weighted() {
            g.edge_weight(u, v).expect("edge exists")
        } else {
            1.0
        };
        match (dists[u.index()], dists[v.index()]) {
            (Some(du), Some(dv)) => {
                if (du - dv).abs() > w + tolerance {
                    violations.push(format!(
                        "edge ({u}, {v}): dists {du} and {dv} differ by more than the \
                         edge length {w}"
                    ));
                }
            }
            (Some(_), None) | (None, Some(_)) => violations.push(format!(
                "edge ({u}, {v}): one endpoint reached, the other never heard the flood"
            )),
            (None, None) => {}
        }
    }
    if !crashed[source] && dists[source] != Some(0.0) {
        violations.push(format!("source {source} does not hold distance 0"));
    }
    if !violations.is_empty() {
        let diagnostic = FaultDiagnostic {
            reason: format!(
                "faults corrupted the flood labels ({} violated edges)",
                violations.len()
            ),
            violations,
            report,
        };
        return Err(CliError::runtime(diagnostic.to_string()));
    }
    println!(
        "validation:     flood labels consistent on all non-crashed nodes{}",
        if report.crashed.is_empty() {
            String::new()
        } else {
            format!(" ({} crashed nodes excluded)", report.crashed.len())
        }
    );
    Ok(())
}

fn cmd_validate(opts: &Opts) -> Result<(), CliError> {
    // --timing: per-phase wall clock for the exact tier. "load" covers
    // everything before validation proper (graph load, clusters CSV,
    // decomposition construction).
    let timing = opts.get("timing").is_some();
    let total_start = std::time::Instant::now();
    let (g, relab) = load_graph(opts).map_err(CliError::runtime)?;
    let path = opts.require("clusters")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    let mut colored: std::collections::HashMap<usize, (Vec<NodeId>, u32)> = Default::default();
    let mut covered = NodeSet::empty(g.n());
    for (lineno, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        // Malformed clusters files are runtime diagnostics (bad data, not
        // bad flags): no usage dump.
        let bad = |what: &str| CliError::runtime(format!("{path}: line {}: {what}", lineno + 1));
        let mut it = line.split(',');
        let v: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad node column"))?;
        if v >= g.n() {
            return Err(bad(&format!("node {v} out of range (n = {})", g.n())));
        }
        let c: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad cluster column"))?;
        let col: u32 = it.next().and_then(|t| t.parse().ok()).unwrap_or(0);
        // The CSV speaks original ids; check against the loaded layout's
        // in-memory counterpart.
        let v = relab.new_of(NodeId::new(v));
        let e = colored.entry(c).or_insert_with(|| (Vec::new(), col));
        e.0.push(v);
        covered.insert(v);
    }
    let clusters: Vec<(Vec<NodeId>, u32)> = colored.into_values().collect();
    let d = sdnd_clustering::NetworkDecomposition::new(&covered, clusters)
        .map_err(|e| CliError::runtime(e.to_string()))?;
    let load = total_start.elapsed();
    // --approx[=p] switches the diameter sweep to the HyperBall
    // estimator tier; the structural gates stay exact either way.
    let approx_params = match opts.get("approx") {
        None => None,
        Some("") => Some(sdnd::graph::algo::HyperBallParams::default()),
        Some(p) => {
            let precision: u8 = p
                .parse()
                .ok()
                .filter(|p| (4..=12).contains(p))
                .ok_or_else(|| "--approx wants a precision in 4..=12".to_string())?;
            Some(sdnd::graph::algo::HyperBallParams::new(precision))
        }
    };
    if let Some(params) = approx_params {
        let report = sdnd_clustering::validate_decomposition_approx(&g, &d, params);
        println!("clusters:       {}", d.num_clusters());
        println!("colors:         {}", d.num_colors());
        println!(
            "radius metric:  hop (HyperBall estimate, 2^{} registers)",
            report.precision
        );
        println!(
            "color-valid:    {}",
            if report.is_valid_weak() { "yes" } else { "NO" }
        );
        println!(
            "connected:      {}",
            if report.clusters_connected {
                "yes"
            } else {
                "NO"
            }
        );
        println!(
            "est strong D:   {}",
            report
                .est_max_strong_diameter
                .map_or("—".into(), |d| d.to_string())
        );
        println!(
            "est weak D:     {}",
            report
                .est_max_weak_diameter
                .map_or("—".into(), |d| d.to_string())
        );
        println!(
            "error band:     ±{:.1}% (observed cardinality error {:.1}%{})",
            report.error_band * 100.0,
            report.max_cardinality_error * 100.0,
            if report.estimator_in_band() {
                ", in band"
            } else {
                ", OUT OF BAND"
            }
        );
        for v in report.violations.iter().take(5) {
            println!("violation:      {v}");
        }
        return Ok(());
    }
    let (report, phases) = sdnd_clustering::validate_decomposition_timed_in(
        &g,
        &d,
        &mut sdnd_clustering::CarveCtx::new(),
    )
    .expect("unarmed ctx never cancels");
    println!("clusters:       {}", d.num_clusters());
    println!("colors:         {}", d.num_colors());
    // The structural checks (non-adjacency, connectivity, colors) are
    // metric-independent; the metric governs the reported diameters.
    println!(
        "radius metric:  {}",
        if g.is_weighted() {
            "weighted (Dijkstra oracle; diameters below)"
        } else {
            "hop (unweighted input)"
        }
    );
    println!(
        "color-valid:    {}",
        if report.is_valid_weak() { "yes" } else { "NO" }
    );
    println!(
        "connected:      {}",
        if report.clusters_connected {
            "yes"
        } else {
            "NO"
        }
    );
    println!(
        "strong D:       {}",
        report
            .max_strong_diameter
            .map_or("—".into(), |d| d.to_string())
    );
    if g.is_weighted() {
        println!(
            "w strong D:     {}",
            fmt_weighted(report.weighted_strong_diameter)
        );
        println!(
            "w weak D:       {}",
            fmt_weighted(report.weighted_weak_diameter)
        );
    }
    for v in report.violations.iter().take(5) {
        println!("violation:      {v}");
    }
    if timing {
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        println!("time load:      {:.3} ms", ms(load));
        println!("time gates:     {:.3} ms", ms(phases.structural));
        println!("time sweeps:    {:.3} ms", ms(phases.diameters));
        println!("time total:     {:.3} ms", ms(total_start.elapsed()));
    }
    Ok(())
}

fn cmd_serve(opts: &Opts) -> Result<(), CliError> {
    let config = sdnd_serve::ServeConfig {
        queue_cap: opts.usize_or("queue", 32)?,
        lru_cap: opts.usize_or("lru", 8)?,
        preload: opts.get("graph").map(String::from),
    };
    match opts.get("socket") {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            let handle = sdnd_serve::spawn_unix(&path, &config)
                .map_err(|e| CliError::runtime(format!("bind {}: {e}", path.display())))?;
            eprintln!("sdnd serve: listening on {}", path.display());
            handle.join();
            let _ = std::fs::remove_file(&path);
            Ok(())
        }
        None => sdnd_serve::run_stdio(&config)
            .map_err(|e| CliError::runtime(format!("stdio serve: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(pairs: &[(&str, &str)]) -> Opts {
        let mut map = std::collections::HashMap::new();
        for (k, v) in pairs {
            map.insert(k.to_string(), v.to_string());
        }
        Opts { map }
    }

    #[test]
    fn parse_opts_accepts_pairs_and_rejects_stragglers() {
        let ok =
            parse_opts(&["--n".into(), "12".into(), "--family".into(), "grid".into()]).unwrap();
        assert_eq!(ok.get("n"), Some("12"));
        assert_eq!(ok.require("family").unwrap(), "grid");
        assert!(parse_opts(&["--n".into()]).is_err(), "missing value");
        assert!(
            parse_opts(&["n".into(), "12".into()]).is_err(),
            "missing dashes"
        );
    }

    #[test]
    fn parse_opts_handles_bare_and_inline_flags() {
        // Bare presence flag: empty value means "default precision".
        let bare = parse_opts(&["--approx".into(), "--n".into(), "12".into()]).unwrap();
        assert_eq!(bare.get("approx"), Some(""));
        assert_eq!(bare.get("n"), Some("12"));
        // Inline `=` form carries the value.
        let inline = parse_opts(&["--approx=8".into()]).unwrap();
        assert_eq!(inline.get("approx"), Some("8"));
        // Inline form works for ordinary options too.
        let pair = parse_opts(&["--eps=0.25".into()]).unwrap();
        assert_eq!(pair.get("eps"), Some("0.25"));
    }

    #[test]
    fn numeric_options_validate() {
        let o = opts(&[("eps", "0.25"), ("n", "100")]);
        assert_eq!(o.f64_or("eps", 0.5).unwrap(), 0.25);
        assert_eq!(o.usize_or("n", 7).unwrap(), 100);
        assert_eq!(o.usize_or("missing", 7).unwrap(), 7);
        let bad = opts(&[("eps", "abc")]);
        assert!(bad.f64_or("eps", 0.5).is_err());
    }

    #[test]
    fn load_graph_parses_edge_lists() {
        let dir = std::env::temp_dir().join("sdnd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        std::fs::write(&path, "# comment\n0 1\n1 2\n\n2 3\n").unwrap();
        let o = opts(&[("input", path.to_str().unwrap())]);
        let (g, relab) = load_graph(&o).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert!(relab.is_identity(), "default layout is natural");
        // Explicit node count extends the universe.
        let o2 = opts(&[("input", path.to_str().unwrap()), ("nodes", "10")]);
        assert_eq!(load_graph(&o2).unwrap().0.n(), 10);
    }

    #[test]
    fn load_graph_reads_weight_columns() {
        let dir = std::env::temp_dir().join("sdnd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weighted.txt");
        std::fs::write(&path, "0 1 2.5\n1 2 0.5\n2 3\n").unwrap();
        // Auto: third column present => weighted, missing entries = 1.
        let o = opts(&[("input", path.to_str().unwrap())]);
        let (g, _) = load_graph(&o).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(NodeId::new(0), NodeId::new(1)), Some(2.5));
        assert_eq!(g.edge_weight(NodeId::new(2), NodeId::new(3)), Some(1.0));
        // Explicit file spec on a weightless file is an error.
        let plain = dir.join("plain.txt");
        std::fs::write(&plain, "0 1\n1 2\n").unwrap();
        let o = opts(&[("input", plain.to_str().unwrap()), ("weights", "file")]);
        assert!(load_graph(&o).unwrap_err().contains("no third"));
        // uniform:lo,hi overrides the file and is seeded.
        let o = opts(&[
            ("input", path.to_str().unwrap()),
            ("weights", "uniform:1,8"),
            ("seed", "7"),
        ]);
        let (g, _) = load_graph(&o).unwrap();
        assert!(g.is_weighted());
        for (_, _, w) in g.weighted_edges() {
            assert!((1.0..=8.0).contains(&w) && w.fract() == 0.0, "weight {w}");
        }
        assert_eq!(g, load_graph(&o).unwrap().0, "seeded weights deterministic");
        // unit stores weight 1 everywhere.
        let o = opts(&[("input", path.to_str().unwrap()), ("weights", "unit")]);
        let (g, _) = load_graph(&o).unwrap();
        assert!(g.is_weighted());
        assert!(g.weighted_edges().all(|(_, _, w)| w == 1.0));
        // Bad specs and bad weight tokens report cleanly.
        let o = opts(&[("input", path.to_str().unwrap()), ("weights", "nope")]);
        assert!(load_graph(&o).is_err());
        let bad = dir.join("badw.txt");
        std::fs::write(&bad, "0 1 x\n").unwrap();
        let o = opts(&[("input", bad.to_str().unwrap())]);
        assert!(load_graph(&o).unwrap_err().contains("bad edge weight"));
    }

    #[test]
    fn weighted_end_to_end_through_the_cli() {
        let dir = std::env::temp_dir().join("sdnd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("w_e2e.txt");
        std::fs::write(&edges, "0 1 4\n1 2 1\n2 3 2\n3 0 1\n2 0 8\n").unwrap();
        let clusters = dir.join("w_e2e.csv");
        // decompose (weighted balls) -> validate (weighted radius checks).
        let args: Vec<String> = [
            "decompose",
            "--algorithm",
            "thm2.3",
            "--input",
            edges.to_str().unwrap(),
            "--output",
            clusters.to_str().unwrap(),
        ]
        .map(String::from)
        .to_vec();
        assert!(run(&args).is_ok());
        let args: Vec<String> = [
            "validate",
            "--input",
            edges.to_str().unwrap(),
            "--clusters",
            clusters.to_str().unwrap(),
        ]
        .map(String::from)
        .to_vec();
        assert!(run(&args).is_ok());
        // --timing rides along on the exact tier without changing the
        // verdict path.
        let args: Vec<String> = [
            "validate",
            "--input",
            edges.to_str().unwrap(),
            "--clusters",
            clusters.to_str().unwrap(),
            "--timing",
        ]
        .map(String::from)
        .to_vec();
        assert!(run(&args).is_ok(), "validate --timing");
        // simulate selects the SpBfs kernel on both lanes.
        for threads in ["1", "2"] {
            let args: Vec<String> = [
                "simulate",
                "--input",
                edges.to_str().unwrap(),
                "--threads",
                threads,
                "--repeat",
                "3",
            ]
            .map(String::from)
            .to_vec();
            assert!(run(&args).is_ok(), "weighted simulate x{threads}");
        }
    }

    #[test]
    fn async_lane_simulate_end_to_end() {
        let dir = std::env::temp_dir().join("sdnd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("async_e2e.txt");
        let g = sdnd::graph::gen::grid(6, 6);
        let mut text = String::new();
        for (u, v) in g.edges() {
            text.push_str(&format!("{u} {v}\n"));
        }
        std::fs::write(&edges, text).unwrap();
        // Zero-fault: cross-checked bit-for-bit against the sync engine.
        for threads in ["1", "3"] {
            let args: Vec<String> = [
                "simulate",
                "--input",
                edges.to_str().unwrap(),
                "--lane",
                "async",
                "--threads",
                threads,
                "--repeat",
                "2",
            ]
            .map(String::from)
            .to_vec();
            assert!(run(&args).is_ok(), "zero-fault async x{threads}");
        }
        // Faulted: accept, or fail with a runtime diagnostic (no usage
        // dump) — never a panic.
        let csv = dir.join("async_e2e_faults.csv");
        let args: Vec<String> = [
            "simulate",
            "--input",
            edges.to_str().unwrap(),
            "--lane",
            "async",
            "--threads",
            "2",
            "--faults",
            "drop=0.02,dup=0.1,delay=1,crash=1",
            "--fault-seed",
            "11",
            "--fault-report",
            csv.to_str().unwrap(),
        ]
        .map(String::from)
        .to_vec();
        match run(&args) {
            Ok(()) => {
                let report = std::fs::read_to_string(&csv).unwrap();
                assert!(report.starts_with("class,count"), "{report}");
                assert!(report.contains("crashes_planned,1"), "{report}");
            }
            Err(e) => assert!(
                !e.show_usage,
                "faulted run fails as a diagnostic: {}",
                e.msg
            ),
        }
        // Fault flags demand the async lane; unknown lanes are rejected.
        let args: Vec<String> = [
            "simulate",
            "--input",
            edges.to_str().unwrap(),
            "--faults",
            "drop=0.5",
        ]
        .map(String::from)
        .to_vec();
        assert!(run(&args).unwrap_err().msg.contains("--lane async"));
        let args: Vec<String> = [
            "simulate",
            "--input",
            edges.to_str().unwrap(),
            "--lane",
            "carrier-pigeon",
        ]
        .map(String::from)
        .to_vec();
        assert!(run(&args).unwrap_err().msg.contains("unknown --lane"));
    }

    #[test]
    fn async_pulse_budget_is_a_runtime_diagnostic() {
        let dir = std::env::temp_dir().join("sdnd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("async_budget.txt");
        std::fs::write(&edges, "0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n").unwrap();
        let args: Vec<String> = [
            "simulate",
            "--input",
            edges.to_str().unwrap(),
            "--lane",
            "async",
            "--max-rounds",
            "2",
        ]
        .map(String::from)
        .to_vec();
        let err = run(&args).unwrap_err();
        assert!(
            err.msg.contains("synchronizer pulses"),
            "pulse budget surfaces the typed error: {}",
            err.msg
        );
        assert!(!err.show_usage, "pulse-limit is a runtime diagnostic");
    }

    #[test]
    fn gen_emits_weight_columns() {
        // `gen --weights uniform` must produce a file that loads back
        // weighted; `--weights file` is rejected for gen.
        let o = opts(&[("family", "grid"), ("n", "16"), ("weights", "uniform:1,4")]);
        assert!(cmd_gen(&o).is_ok());
        let o = opts(&[("family", "grid"), ("n", "16"), ("weights", "file")]);
        assert!(cmd_gen(&o).is_err());
    }

    #[test]
    fn load_graph_reports_bad_lines() {
        let dir = std::env::temp_dir().join("sdnd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "0 x\n").unwrap();
        let o = opts(&[("input", path.to_str().unwrap())]);
        let err = load_graph(&o).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn decompose_max_rounds_reports_clean_diagnostic() {
        let dir = std::env::temp_dir().join("sdnd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("budget.txt");
        std::fs::write(&path, "0 1\n1 2\n2 3\n3 0\n").unwrap();
        let args: Vec<String> = [
            "decompose",
            "--algorithm",
            "thm2.3",
            "--input",
            path.to_str().unwrap(),
            "--max-rounds",
            "1",
        ]
        .map(String::from)
        .to_vec();
        let err = run(&args).unwrap_err();
        assert!(
            err.msg.contains("round budget exceeded") && err.msg.contains("--max-rounds 1"),
            "{}",
            err.msg
        );
        assert!(!err.show_usage, "round-limit is a runtime diagnostic");
        // A generous budget passes.
        let args: Vec<String> = [
            "decompose",
            "--algorithm",
            "thm2.3",
            "--input",
            path.to_str().unwrap(),
            "--max-rounds",
            "1000000",
        ]
        .map(String::from)
        .to_vec();
        assert!(run(&args).is_ok());
    }

    #[test]
    fn simulate_runs_on_both_lanes() {
        let dir = std::env::temp_dir().join("sdnd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim.txt");
        std::fs::write(&path, "0 1\n1 2\n2 3\n").unwrap();
        for threads in ["1", "3"] {
            let args: Vec<String> = [
                "simulate",
                "--input",
                path.to_str().unwrap(),
                "--source",
                "0",
                "--threads",
                threads,
            ]
            .map(String::from)
            .to_vec();
            assert!(run(&args).is_ok(), "simulate with {threads} threads");
        }
        // --repeat reuses one session across runs on both lanes.
        for threads in ["1", "2"] {
            let args: Vec<String> = [
                "simulate",
                "--input",
                path.to_str().unwrap(),
                "--repeat",
                "5",
                "--threads",
                threads,
            ]
            .map(String::from)
            .to_vec();
            assert!(run(&args).is_ok(), "simulate --repeat 5 x{threads}");
        }
        // --repeat 0 is a usage error.
        let args: Vec<String> = [
            "simulate",
            "--input",
            path.to_str().unwrap(),
            "--repeat",
            "0",
        ]
        .map(String::from)
        .to_vec();
        let err = run(&args).unwrap_err();
        assert!(err.show_usage, "--repeat 0 is a usage problem");
        // Round budget violations surface the engine error cleanly.
        let args: Vec<String> = [
            "simulate",
            "--input",
            path.to_str().unwrap(),
            "--max-rounds",
            "1",
        ]
        .map(String::from)
        .to_vec();
        let err = run(&args).unwrap_err();
        assert!(err.msg.contains("did not quiesce"), "{}", err.msg);
        assert!(!err.show_usage);
        // An out-of-range source is a usage problem.
        let args: Vec<String> = [
            "simulate",
            "--input",
            path.to_str().unwrap(),
            "--source",
            "99",
        ]
        .map(String::from)
        .to_vec();
        assert!(run(&args).unwrap_err().show_usage);
    }

    #[test]
    fn validate_reports_bad_cluster_files_cleanly() {
        let dir = std::env::temp_dir().join("sdnd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("val.txt");
        std::fs::write(&edges, "0 1\n1 2\n").unwrap();
        for (csv, needle) in [
            ("node,cluster,color\n99,0,0\n", "out of range"),
            ("node,cluster,color\nx,0,0\n", "bad node column"),
            ("node,cluster,color\n1,y,0\n", "bad cluster column"),
        ] {
            let clusters = dir.join("val_clusters.csv");
            std::fs::write(&clusters, csv).unwrap();
            let args: Vec<String> = [
                "validate",
                "--input",
                edges.to_str().unwrap(),
                "--clusters",
                clusters.to_str().unwrap(),
            ]
            .map(String::from)
            .to_vec();
            let err = run(&args).unwrap_err();
            assert!(err.msg.contains(needle), "{needle}: {}", err.msg);
            assert!(!err.show_usage, "data problems are runtime diagnostics");
        }
    }

    #[test]
    fn gen_writes_output_files_and_caches() {
        let dir = std::env::temp_dir().join("sdnd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("gen_cached.txt");
        let _ = std::fs::remove_file(dataset::cache_path_for(&edges));
        let args: Vec<String> = [
            "gen",
            "--family",
            "geometric",
            "--n",
            "64",
            "--output",
            edges.to_str().unwrap(),
            "--cache",
        ]
        .map(String::from)
        .to_vec();
        assert!(run(&args).is_ok());
        let cache = dataset::cache_path_for(&edges);
        assert!(cache.exists(), "gen --cache writes the binary CSR form");
        // The cached form loads back identical to the text parse.
        let o = opts(&[("input", edges.to_str().unwrap()), ("cache", "")]);
        let (via_cache, _) = load_graph(&o).unwrap();
        let o = opts(&[("input", edges.to_str().unwrap())]);
        let (via_text, _) = load_graph(&o).unwrap();
        assert_eq!(via_cache, via_text);
        // The .csrbin itself is a valid --input.
        let o = opts(&[("input", cache.to_str().unwrap())]);
        assert_eq!(load_graph(&o).unwrap().0, via_text);
        // --cache without --output is a usage error; rmat rounds n up.
        let args: Vec<String> = ["gen", "--family", "rmat", "--n", "60", "--cache"]
            .map(String::from)
            .to_vec();
        assert!(run(&args).unwrap_err().show_usage);
    }

    #[test]
    fn ingest_writes_then_hits_the_cache() {
        let dir = std::env::temp_dir().join("sdnd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("ingest.txt");
        std::fs::write(&edges, "0 1\n1 2\n2 3\n3 0\n").unwrap();
        let cache = dataset::cache_path_for(&edges);
        let _ = std::fs::remove_file(&cache);
        let args: Vec<String> = ["ingest", edges.to_str().unwrap()]
            .map(String::from)
            .to_vec();
        assert!(run(&args).is_ok(), "cold ingest");
        assert!(cache.exists(), "ingest writes the cache");
        assert!(run(&args).is_ok(), "warm ingest hits the cache");
        // A positional file is mandatory; reweighting specs are rejected.
        assert!(run(&["ingest".to_string()]).unwrap_err().show_usage);
        let args: Vec<String> = ["ingest", edges.to_str().unwrap(), "--weights", "unit"]
            .map(String::from)
            .to_vec();
        assert!(run(&args).unwrap_err().show_usage);
    }

    #[test]
    fn layouts_round_trip_through_original_ids() {
        let dir = std::env::temp_dir().join("sdnd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("layout.txt");
        // A 4x4 grid, listed in natural order.
        let mut text = String::new();
        for r in 0..4usize {
            for c in 0..4usize {
                let v = r * 4 + c;
                if c + 1 < 4 {
                    text.push_str(&format!("{v} {}\n", v + 1));
                }
                if r + 1 < 4 {
                    text.push_str(&format!("{v} {}\n", v + 4));
                }
            }
        }
        std::fs::write(&edges, text).unwrap();
        let clusters = dir.join("layout.csv");
        // Decompose under a Hilbert layout, export CSV …
        let args: Vec<String> = [
            "decompose",
            "--algorithm",
            "thm2.3",
            "--input",
            edges.to_str().unwrap(),
            "--layout",
            "hilbert",
            "--output",
            clusters.to_str().unwrap(),
        ]
        .map(String::from)
        .to_vec();
        assert!(run(&args).is_ok());
        // … and validate it under the natural AND a different SFC
        // layout: the CSV speaks original ids, so both must pass.
        for layout in ["natural", "morton", "bfs"] {
            let args: Vec<String> = [
                "validate",
                "--input",
                edges.to_str().unwrap(),
                "--clusters",
                clusters.to_str().unwrap(),
                "--layout",
                layout,
            ]
            .map(String::from)
            .to_vec();
            assert!(run(&args).is_ok(), "validate --layout {layout}");
        }
        // simulate maps --source through the relabeling.
        let args: Vec<String> = [
            "simulate",
            "--input",
            edges.to_str().unwrap(),
            "--layout",
            "hilbert",
            "--source",
            "15",
        ]
        .map(String::from)
        .to_vec();
        assert!(run(&args).is_ok());
        // An unknown layout is a usage error.
        let o = opts(&[("input", edges.to_str().unwrap()), ("layout", "zorro")]);
        assert!(load_graph(&o).unwrap_err().contains("--layout"));
    }

    #[test]
    fn load_graph_reads_gzip_edge_lists() {
        let dir = std::env::temp_dir().join("sdnd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let gz = dir.join("gzipped.txt.gz");
        std::fs::write(&gz, dataset::gzip_stored(b"0 1\n1 2\n2 0\n")).unwrap();
        let o = opts(&[("input", gz.to_str().unwrap())]);
        let (g, _) = load_graph(&o).unwrap();
        assert_eq!((g.n(), g.m()), (3, 3));
    }

    #[test]
    fn unknown_command_and_algorithm_error() {
        assert!(run(&["frobnicate".into()]).is_err());
        let dir = std::env::temp_dir().join("sdnd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.txt");
        std::fs::write(&path, "0 1\n").unwrap();
        let args = vec![
            "carve".to_string(),
            "--algorithm".into(),
            "nope".into(),
            "--input".into(),
            path.to_str().unwrap().into(),
        ];
        assert!(run(&args).is_err());
    }
}
